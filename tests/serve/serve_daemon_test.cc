// End-to-end daemon tests over a real Unix socket: protocol framing, the
// full request surface, admission control, slow-client eviction, restart
// recovery, and shard-count persistence (src/serve/{protocol,daemon,client}).

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/failpoint.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/protocol.h"

namespace lossyts::serve {
namespace {

class ServeDaemonTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::DisarmAll(); }
};

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
  return dir;
}

DaemonOptions TestOptions(const std::string& dir) {
  DaemonOptions options;
  options.dir = dir;
  options.shards = 2;
  options.jobs = 1;
  options.shard.codecs = {"GORILLA"};
  options.shard.sync = false;  // In-process tests need no real fsync.
  return options;
}

// --- Protocol framing -----------------------------------------------------

TEST_F(ServeDaemonTest, RequestEncodingRoundTrips) {
  Request request;
  request.type = RequestType::kAppend;
  request.series = "node-7.cpu";
  request.first_timestamp = -1234567890123;
  request.interval_seconds = 15;
  request.values = {0.0, -1.5, 3.25e300, 1e-300};
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, request.type);
  EXPECT_EQ(decoded->series, request.series);
  EXPECT_EQ(decoded->first_timestamp, request.first_timestamp);
  EXPECT_EQ(decoded->interval_seconds, request.interval_seconds);
  EXPECT_EQ(decoded->values, request.values);

  Request read;
  read.type = RequestType::kReadRange;
  read.series = "x";
  read.t0 = -5;
  read.t1 = 1LL << 40;
  auto decoded_read = DecodeRequest(EncodeRequest(read));
  ASSERT_TRUE(decoded_read.ok());
  EXPECT_EQ(decoded_read->t0, read.t0);
  EXPECT_EQ(decoded_read->t1, read.t1);
}

TEST_F(ServeDaemonTest, ReplyEncodingRoundTrips) {
  Reply reply;
  reply.kind = ReplyKind::kOk;
  reply.start_timestamp = 777;
  reply.interval_seconds = 60;
  reply.values = {1.0, 2.0, 3.0};
  auto decoded = DecodeReply(RequestType::kReadRange,
                             EncodeReply(RequestType::kReadRange, reply));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->start_timestamp, 777);
  EXPECT_EQ(decoded->values, reply.values);

  Reply retry;
  retry.kind = ReplyKind::kRetry;
  retry.message = "queue full";
  retry.retry_after_ms = 75;
  auto decoded_retry = DecodeReply(RequestType::kAppend,
                                   EncodeReply(RequestType::kAppend, retry));
  ASSERT_TRUE(decoded_retry.ok());
  EXPECT_EQ(decoded_retry->kind, ReplyKind::kRetry);
  EXPECT_EQ(decoded_retry->retry_after_ms, 75u);
  EXPECT_EQ(StatusFromReply(*decoded_retry).code(), StatusCode::kUnavailable);

  const Status lost = Status::Corruption("chunk 3 failed its crc");
  auto decoded_error =
      DecodeReply(RequestType::kPing,
                  EncodeReply(RequestType::kPing, ReplyFromStatus(lost, 0)));
  ASSERT_TRUE(decoded_error.ok());
  const Status back = StatusFromReply(*decoded_error);
  EXPECT_EQ(back.code(), StatusCode::kCorruption);
  EXPECT_EQ(back.message(), lost.message());
}

TEST_F(ServeDaemonTest, QueryEncodingRoundTrips) {
  Request request;
  request.type = RequestType::kQuery;
  request.query.metrics = {"mae", "pinball@0.9"};
  request.query.group_by = "prefix";
  request.query.delimiter = ".";
  request.query.t0 = -5000;
  request.query.t1 = 987654321;
  request.query.match = "cpu";
  request.query.pred_suffix = ".fc";
  request.query.season_length = 24;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, RequestType::kQuery);
  EXPECT_EQ(decoded->query.metrics, request.query.metrics);
  EXPECT_EQ(decoded->query.group_by, "prefix");
  EXPECT_EQ(decoded->query.delimiter, ".");
  EXPECT_EQ(decoded->query.t0, -5000);
  EXPECT_EQ(decoded->query.t1, 987654321);
  EXPECT_EQ(decoded->query.match, "cpu");
  EXPECT_EQ(decoded->query.pred_suffix, ".fc");
  EXPECT_EQ(decoded->query.season_length, 24);

  Reply reply;
  reply.kind = ReplyKind::kOk;
  reply.query.metric_names = {"mae", "pinball@0.9"};
  reply.query.aggregate_names = {"MEAN"};
  query::GroupRow row;
  row.group = "cpu";
  row.series_count = 3;
  row.points = 1200;
  row.aggregates = {42.5};
  row.metrics = {0.25, 0.125};
  reply.query.rows.push_back(row);
  auto decoded_reply = DecodeReply(RequestType::kQuery,
                                   EncodeReply(RequestType::kQuery, reply));
  ASSERT_TRUE(decoded_reply.ok()) << decoded_reply.status().ToString();
  EXPECT_EQ(decoded_reply->query.metric_names, reply.query.metric_names);
  EXPECT_EQ(decoded_reply->query.aggregate_names,
            reply.query.aggregate_names);
  ASSERT_EQ(decoded_reply->query.rows.size(), 1u);
  EXPECT_EQ(decoded_reply->query.rows[0].group, "cpu");
  EXPECT_EQ(decoded_reply->query.rows[0].series_count, 3u);
  EXPECT_EQ(decoded_reply->query.rows[0].points, 1200u);
  EXPECT_EQ(decoded_reply->query.rows[0].aggregates, row.aggregates);
  EXPECT_EQ(decoded_reply->query.rows[0].metrics, row.metrics);
}

TEST_F(ServeDaemonTest, FramesSurviveTheWireAndRejectCorruption) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  ASSERT_TRUE(WriteFrame(fds[0], payload, 1000).ok());
  auto read = ReadFrame(fds[1], 1000);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, payload);

  // A flipped payload bit must fail the CRC, not hand back garbage.
  std::vector<uint8_t> frame_bytes;
  {
    int raw[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, raw), 0);
    ASSERT_TRUE(WriteFrame(raw[0], payload, 1000).ok());
    frame_bytes.resize(payload.size() + kFrameOverhead);
    ASSERT_EQ(::recv(raw[1], frame_bytes.data(), frame_bytes.size(), 0),
              static_cast<ssize_t>(frame_bytes.size()));
    ::close(raw[0]);
    ::close(raw[1]);
  }
  frame_bytes[9] ^= 0x40;
  ASSERT_EQ(::send(fds[0], frame_bytes.data(), frame_bytes.size(), 0),
            static_cast<ssize_t>(frame_bytes.size()));
  EXPECT_EQ(ReadFrame(fds[1], 1000).status().code(), StatusCode::kCorruption);

  // Clean EOF at a frame boundary is NotFound, not an error.
  ::close(fds[0]);
  EXPECT_EQ(ReadFrame(fds[1], 1000).status().code(), StatusCode::kNotFound);
  ::close(fds[1]);
}

// --- The daemon itself ----------------------------------------------------

TEST_F(ServeDaemonTest, EndToEndAppendReadListStats) {
  const std::string dir = TempDir("daemon_e2e");
  auto daemon = Daemon::Start(TestOptions(dir));
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();

  auto client = Client::Connect((*daemon)->socket_path());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE((*client)->Ping().ok());

  ASSERT_TRUE((*client)->Append("cpu", 0, 60, {1.0, 2.0, 3.0}).ok());
  ASSERT_TRUE((*client)->Append("mem", 100, 30, {-5.5}).ok());
  ASSERT_TRUE((*client)->Append("cpu", 180, 60, {4.0}).ok());
  // A grid break is a terminal error, surfaced with the daemon's message.
  const Status broken = (*client)->Append("cpu", 999, 60, {9.0});
  EXPECT_EQ(broken.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(broken.message().find("grid"), std::string::npos);

  auto cpu = (*client)->ReadRange("cpu", 0, 100000);
  ASSERT_TRUE(cpu.ok());
  EXPECT_EQ(cpu->values(), (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  auto clamped = (*client)->ReadRange("cpu", 60, 120);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped->values(), (std::vector<double>{2.0, 3.0}));
  EXPECT_EQ((*client)->ReadRange("nope", 0, 1).status().code(),
            StatusCode::kNotFound);

  auto names = (*client)->ListSeries();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"cpu", "mem"}));

  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->shards, 2u);
  EXPECT_EQ(stats->series, 2u);
  EXPECT_EQ(stats->points, 5u);
  EXPECT_EQ(stats->appended_ops, 3u);
  EXPECT_EQ(stats->failed_shards, 0u);
  EXPECT_GE(stats->accepted, 3u);

  // A second concurrent client works (connection-per-thread model).
  auto other = Client::Connect((*daemon)->socket_path());
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE((*other)->Ping().ok());

  EXPECT_TRUE((*client)->Shutdown().ok());
  (*daemon)->Wait();
  EXPECT_TRUE((*daemon)->Stop().ok());
}

TEST_F(ServeDaemonTest, EndToEndGroupedQuery) {
  const std::string dir = TempDir("daemon_query");
  auto daemon = Daemon::Start(TestOptions(dir));
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
  auto client = Client::Connect((*daemon)->socket_path());
  ASSERT_TRUE(client.ok());

  // Two sites with known residuals (+0.5 and -1.0) plus their forecast
  // pairs, spread across both shards.
  std::vector<double> east(120), east_pred(120), west(120), west_pred(120);
  for (int i = 0; i < 120; ++i) {
    east[static_cast<size_t>(i)] = 10.0 + 0.25 * i;
    east_pred[static_cast<size_t>(i)] = 10.5 + 0.25 * i;
    west[static_cast<size_t>(i)] = 20.0 + 0.25 * i;
    west_pred[static_cast<size_t>(i)] = 19.0 + 0.25 * i;
  }
  ASSERT_TRUE((*client)->Append("site_east", 0, 60, east).ok());
  ASSERT_TRUE((*client)->Append("site_east.pred", 0, 60, east_pred).ok());
  ASSERT_TRUE((*client)->Append("site_west", 0, 60, west).ok());
  ASSERT_TRUE((*client)->Append("site_west.pred", 0, 60, west_pred).ok());

  QuerySpec spec;
  spec.metrics = {"mae", "bias"};
  auto per_series = (*client)->Query(spec);
  ASSERT_TRUE(per_series.ok()) << per_series.status().ToString();
  ASSERT_EQ(per_series->rows.size(), 2u);
  EXPECT_EQ(per_series->rows[0].group, "site_east");
  EXPECT_DOUBLE_EQ(per_series->rows[0].metrics[0], 0.5);
  EXPECT_EQ(per_series->rows[1].group, "site_west");
  EXPECT_DOUBLE_EQ(per_series->rows[1].metrics[1], -1.0);

  // Prefix grouping pools both sites into one "site" row.
  spec.group_by = "prefix";
  auto pooled = (*client)->Query(spec);
  ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
  ASSERT_EQ(pooled->rows.size(), 1u);
  EXPECT_EQ(pooled->rows[0].group, "site");
  EXPECT_EQ(pooled->rows[0].series_count, 2u);
  EXPECT_EQ(pooled->rows[0].points, 240u);
  EXPECT_DOUBLE_EQ(pooled->rows[0].metrics[0], 0.75);
  EXPECT_DOUBLE_EQ(pooled->rows[0].metrics[1], -0.25);

  // A time range restricts the pooled points.
  spec.t0 = 60 * 60;
  spec.t1 = 60 * 119;
  auto ranged = (*client)->Query(spec);
  ASSERT_TRUE(ranged.ok()) << ranged.status().ToString();
  EXPECT_EQ(ranged->rows[0].points, 120u);

  // Server-side validation surfaces as the carried Status: bad group mode,
  // no metrics, unknown metric.
  QuerySpec bad_mode = spec;
  bad_mode.group_by = "bogus";
  EXPECT_EQ((*client)->Query(bad_mode).status().code(),
            StatusCode::kInvalidArgument);
  QuerySpec no_metrics;
  EXPECT_EQ((*client)->Query(no_metrics).status().code(),
            StatusCode::kInvalidArgument);
  QuerySpec unknown;
  unknown.metrics = {"made_up_metric"};
  EXPECT_FALSE((*client)->Query(unknown).ok());

  ASSERT_TRUE((*daemon)->Stop().ok());
}

TEST_F(ServeDaemonTest, GracefulRestartRecoversEverythingAcked) {
  const std::string dir = TempDir("daemon_restart");
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(i * 0.73 - 11.0);
  {
    auto daemon = Daemon::Start(TestOptions(dir));
    ASSERT_TRUE(daemon.ok());
    auto client = Client::Connect((*daemon)->socket_path());
    ASSERT_TRUE(client.ok());
    for (size_t at = 0; at < values.size(); at += 50) {
      std::vector<double> slice(values.begin() + static_cast<long>(at),
                                values.begin() + static_cast<long>(at + 50));
      ASSERT_TRUE(
          (*client)->Append("walk", static_cast<int64_t>(at) * 60, 60, slice)
              .ok());
    }
    ASSERT_TRUE((*daemon)->Stop().ok());
  }
  // Reopen with a DIFFERENT --shards: the persisted count must win, or the
  // series would hash to the wrong shard and "vanish".
  DaemonOptions reopened_options = TestOptions(dir);
  reopened_options.shards = 7;
  auto daemon = Daemon::Start(reopened_options);
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
  auto client = Client::Connect((*daemon)->socket_path());
  ASSERT_TRUE(client.ok());
  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->shards, 2u);  // Not 7.
  EXPECT_EQ(stats->points, values.size());
  auto read = (*client)->ReadRange("walk", 0, 1LL << 40);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->values(), values);
  ASSERT_TRUE((*daemon)->Stop().ok());
}

TEST_F(ServeDaemonTest, FullQueueRefusesWithRetryNotAnError) {
  const std::string dir = TempDir("daemon_admission");
  DaemonOptions options = TestOptions(dir);
  options.max_queue_ops = 0;  // Admit nothing: every append must bounce.
  options.retry_after_ms = 5;
  auto daemon = Daemon::Start(options);
  ASSERT_TRUE(daemon.ok());

  ClientOptions client_options;
  client_options.max_retries = 2;  // Give up fast; the queue never opens.
  auto client = Client::Connect((*daemon)->socket_path(), client_options);
  ASSERT_TRUE(client.ok());

  const Status status = (*client)->Append("s", 0, 60, {1.0});
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // The connection survives backpressure, and reads are not gated.
  EXPECT_TRUE((*client)->Ping().ok());
  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->rejected, 3u);  // Initial try + 2 retries.
  EXPECT_EQ(stats->points, 0u);
  ASSERT_TRUE((*daemon)->Stop().ok());
}

TEST_F(ServeDaemonTest, SlowClientsAreEvicted) {
  const std::string dir = TempDir("daemon_evict");
  DaemonOptions options = TestOptions(dir);
  options.client_timeout_ms = 100;
  auto daemon = Daemon::Start(options);
  ASSERT_TRUE(daemon.ok());

  // A half-sent frame header stalls the daemon's read; after
  // client_timeout_ms it must drop us rather than hold the thread hostage.
  auto fd = ConnectUnix((*daemon)->socket_path());
  ASSERT_TRUE(fd.ok());
  const uint8_t half_header[4] = {0x4C, 0x54, 0x53, 0x4D};
  ASSERT_EQ(::send(*fd, half_header, sizeof(half_header), MSG_NOSIGNAL), 4);
  char byte = 0;
  // recv blocks until the daemon closes the connection; EOF is the eviction.
  EXPECT_EQ(::recv(*fd, &byte, 1, 0), 0);
  ::close(*fd);

  auto client = Client::Connect((*daemon)->socket_path());
  ASSERT_TRUE(client.ok());
  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->evicted_clients, 1u);
  ASSERT_TRUE((*daemon)->Stop().ok());
}

TEST_F(ServeDaemonTest, GarbageFramesDropTheConnectionWithoutReply) {
  const std::string dir = TempDir("daemon_garbage");
  auto daemon = Daemon::Start(TestOptions(dir));
  ASSERT_TRUE(daemon.ok());
  auto fd = ConnectUnix((*daemon)->socket_path());
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> garbage(64, 0xA5);  // Wrong magic.
  ASSERT_EQ(::send(*fd, garbage.data(), garbage.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(garbage.size()));
  char byte = 0;
  // Closed without a reply: EOF, or ECONNRESET when the daemon hangs up
  // with part of our garbage still unread.
  EXPECT_LE(::recv(*fd, &byte, 1, 0), 0);
  ::close(*fd);
  // The daemon is still healthy for well-formed clients.
  auto client = Client::Connect((*daemon)->socket_path());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Ping().ok());
  ASSERT_TRUE((*daemon)->Stop().ok());
}

// Mixed concurrent clients against one daemon; named *ConcurrencyTest so the
// TSan CI leg picks it up.
TEST(ServeDaemonConcurrencyTest, ParallelWritersAndReadersStayConsistent) {
  const std::string dir = ::testing::TempDir() + "daemon_parallel";
  std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
  DaemonOptions options;
  options.dir = dir;
  options.shards = 2;
  options.jobs = 2;
  options.shard.codecs = {"GORILLA"};
  options.shard.sync = false;
  auto daemon = Daemon::Start(options);
  ASSERT_TRUE(daemon.ok());

  constexpr int kWriters = 3;
  constexpr int kBatches = 20;
  constexpr int kPerBatch = 4;
  auto value_at = [](int writer, size_t i) {
    return static_cast<double>(writer * 1000) + static_cast<double>(i) * 0.5;
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto client = Client::Connect((*daemon)->socket_path());
      ASSERT_TRUE(client.ok());
      const std::string series = "writer-" + std::to_string(w);
      for (int b = 0; b < kBatches; ++b) {
        std::vector<double> values;
        for (int i = 0; i < kPerBatch; ++i) {
          values.push_back(value_at(w, b * kPerBatch + i));
        }
        ASSERT_TRUE((*client)
                        ->Append(series,
                                 static_cast<int64_t>(b) * kPerBatch * 60, 60,
                                 values)
                        .ok());
        // Read-your-writes: everything acked so far must be visible, exact,
        // and a clean op-granular prefix.
        auto read = (*client)->ReadRange(series, 0, 1LL << 40);
        ASSERT_TRUE(read.ok());
        ASSERT_EQ(read->values().size(),
                  static_cast<size_t>((b + 1) * kPerBatch));
        for (size_t i = 0; i < read->values().size(); ++i) {
          ASSERT_EQ(read->values()[i], value_at(w, i));
        }
      }
    });
  }
  // A roaming reader hammers foreign series and stats while writers run.
  threads.emplace_back([&] {
    auto client = Client::Connect((*daemon)->socket_path());
    ASSERT_TRUE(client.ok());
    for (int round = 0; round < 40; ++round) {
      for (int w = 0; w < kWriters; ++w) {
        auto read =
            (*client)->ReadRange("writer-" + std::to_string(w), 0, 1LL << 40);
        if (read.ok()) {
          ASSERT_EQ(read->values().size() % kPerBatch, 0u);
          for (size_t i = 0; i < read->values().size(); ++i) {
            ASSERT_EQ(read->values()[i], value_at(w, i));
          }
        } else {
          ASSERT_EQ(read.status().code(), StatusCode::kNotFound);
        }
      }
      ASSERT_TRUE((*client)->Stats().ok());
    }
  });
  for (std::thread& t : threads) t.join();

  auto client = Client::Connect((*daemon)->socket_path());
  ASSERT_TRUE(client.ok());
  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->points,
            static_cast<uint64_t>(kWriters * kBatches * kPerBatch));
  EXPECT_EQ(stats->appended_ops,
            static_cast<uint64_t>(kWriters * kBatches));
  EXPECT_EQ(stats->failed_shards, 0u);
  ASSERT_TRUE((*daemon)->Stop().ok());
}

}  // namespace
}  // namespace lossyts::serve
