// The chaos battery: hundreds of randomized kill-at-failpoint runs against a
// shard under mixed traffic. Each iteration arms one crash site (WAL write,
// WAL fsync, checkpoint, store write) at a random hit count, ingests until
// the "kill" fires, then reopens and checks the durability contract:
//
//   * zero lost acked writes — every op acked before the kill is recovered
//     bit-exactly (lossless codec), and
//   * zero half-visible un-acked writes — recovery may keep whole un-acked
//     ops (they were fully framed before the crash) but never a fraction of
//     one, and never out of order.
//
// Iterations default to 200; scale with LOSSYTS_SERVE_CHAOS_ITERS.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "core/failpoint.h"
#include "serve/shard.h"

namespace lossyts::serve {
namespace {

int ChaosIterations() {
  const char* env = std::getenv("LOSSYTS_SERVE_CHAOS_ITERS");
  if (env != nullptr && *env != '\0') {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 200;
}

// Deterministic value stream per series so any recovered point is checkable
// in isolation.
double ExpectedValue(int series, size_t index) {
  return static_cast<double>(series + 1) * 100.0 +
         static_cast<double>(index) * 1.0e-3 - 0.5;
}

struct CrashSite {
  const char* site;
  uint32_t max_fire_on;  // Hit counts are drawn from [1, max_fire_on].
};

// wal_write hits once per op, wal_fsync once per batch, shard_flush twice
// per checkpoint plus once per dirty series, store_write on every store
// write call during a checkpoint rewrite.
constexpr CrashSite kCrashSites[] = {
    {"wal_write", 40},
    {"wal_fsync", 40},
    {"shard_flush", 12},
    {"store_write", 30},
};

TEST(ServeChaosTest, RandomKillsNeverLoseAckedOrSplitUnackedWrites) {
  const int iterations = ChaosIterations();
  constexpr int kSeriesCount = 3;
  constexpr int kOpsPerRun = 36;

  int fired_runs = 0;
  std::map<std::string, int> fired_by_site;
  for (int iter = 0; iter < iterations; ++iter) {
    std::mt19937 rng(0xC4A05000u + static_cast<uint32_t>(iter));
    const std::string dir =
        ::testing::TempDir() + "serve_chaos_" + std::to_string(iter);
    {
      const std::string cmd = "rm -rf '" + dir + "'";
      ASSERT_EQ(std::system(cmd.c_str()), 0);
    }

    ShardOptions options;
    options.codecs = {"GORILLA"};  // Recovery must be bit-exact.
    options.sync = false;
    // Tiny checkpoint threshold so flush/store crash sites actually get hit.
    options.flush_wal_bytes = 1u << 10;
    options.chunk_span = 32;

    const CrashSite& crash =
        kCrashSites[rng() % (sizeof(kCrashSites) / sizeof(kCrashSites[0]))];
    const uint32_t fire_on = 1 + rng() % crash.max_fire_on;

    // acked[s] / issued[s]: points acked vs issued (acked + at most the one
    // pending op) per series. All single-op batches, so the un-acked window
    // is exactly one op.
    size_t acked[kSeriesCount] = {0, 0, 0};
    size_t issued[kSeriesCount] = {0, 0, 0};
    bool crashed = false;

    {
      auto shard = Shard::Open(dir, options);
      ASSERT_TRUE(shard.ok()) << shard.status().ToString();
      FailPoints::Arm(crash.site, fire_on);

      for (int op_index = 0; op_index < kOpsPerRun && !crashed; ++op_index) {
        const int s = static_cast<int>(rng() % kSeriesCount);
        const size_t count = 1 + rng() % 8;
        AppendOp op;
        op.series = "chaos-" + std::to_string(s);
        op.interval_seconds = 60;
        op.first_timestamp = static_cast<int64_t>(issued[s]) * 60;
        for (size_t i = 0; i < count; ++i) {
          op.values.push_back(ExpectedValue(s, issued[s] + i));
        }
        issued[s] += count;

        const std::vector<Status> statuses = (*shard)->AppendBatch({op});
        ASSERT_EQ(statuses.size(), 1u);
        if (statuses[0].ok()) {
          acked[s] = issued[s];
        } else {
          // The kill: a WAL-path failpoint fired. Stop driving traffic, as
          // a crashed process would.
          ASSERT_TRUE(statuses[0].code() == StatusCode::kInternal ||
                      statuses[0].code() == StatusCode::kFailedPrecondition)
              << statuses[0].ToString();
          crashed = true;
          break;
        }
        // A checkpoint crash is non-fatal to the shard, but it is still our
        // simulated kill point: stop as soon as one fires.
        if ((*shard)->Stats().flush_failures > 0) {
          crashed = true;
          break;
        }

        // Mixed traffic: interleave reads and verify the live prefix.
        if (rng() % 3 == 0) {
          const int r = static_cast<int>(rng() % kSeriesCount);
          auto read =
              (*shard)->ReadRange("chaos-" + std::to_string(r), 0, 1LL << 40);
          if (acked[r] == 0) {
            ASSERT_FALSE(read.ok());
          } else {
            ASSERT_TRUE(read.ok()) << read.status().ToString();
            ASSERT_EQ(read->values().size(), acked[r]);
          }
        }
      }
      FailPoints::DisarmAll();
      if (crashed) {
        ++fired_runs;
        ++fired_by_site[crash.site];
      }
      // kill -9: the shard object dies with no flush and no clean close.
    }

    // Post-kill reopen must be clean or salvage-consistent — never an error,
    // never a crash.
    auto reopened = Shard::Open(dir, options);
    ASSERT_TRUE(reopened.ok())
        << "iter " << iter << " site " << crash.site << "@" << fire_on << ": "
        << reopened.status().ToString();

    for (int s = 0; s < kSeriesCount; ++s) {
      const std::string name = "chaos-" + std::to_string(s);
      auto read = (*reopened)->ReadRange(name, 0, 1LL << 40);
      size_t recovered = 0;
      if (read.ok()) {
        recovered = read->values().size();
      } else {
        ASSERT_EQ(read.status().code(), StatusCode::kNotFound);
      }
      // No lost acked writes...
      ASSERT_GE(recovered, acked[s])
          << "iter " << iter << " site " << crash.site << "@" << fire_on
          << " series " << name << ": lost acked points";
      // ...and nothing beyond whole issued ops (the single pending op may
      // survive in full, never in part).
      ASSERT_LE(recovered, issued[s])
          << "iter " << iter << " series " << name << ": phantom points";
      ASSERT_TRUE(recovered == acked[s] || recovered == issued[s])
          << "iter " << iter << " site " << crash.site << "@" << fire_on
          << " series " << name << ": half-visible op (acked " << acked[s]
          << ", issued " << issued[s] << ", recovered " << recovered << ")";
      for (size_t i = 0; i < recovered; ++i) {
        ASSERT_EQ(read->values()[i], ExpectedValue(s, i))
            << "iter " << iter << " series " << name << " point " << i;
      }
    }

    const std::string cmd = "rm -rf '" + dir + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  // The battery is only meaningful if the crash sites actually fire; with
  // the default 200 iterations well over half should.
  EXPECT_GE(fired_runs, iterations / 4)
      << "failpoints barely fired — crash coverage has rotted";
  RecordProperty("chaos_iterations", iterations);
  RecordProperty("chaos_fired_runs", fired_runs);
  for (const auto& [site, count] : fired_by_site) {
    RecordProperty(("chaos_fired_" + site).c_str(), count);
  }
}

}  // namespace
}  // namespace lossyts::serve
