// WAL format and writer: record round trip, torn-tail salvage, atomic
// reset, failpoint crash semantics, and the conform mutation battery over
// the log framing (src/serve/wal.{h,cc}, src/conform/mutate.cc).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "conform/mutate.h"
#include "core/failpoint.h"
#include "serve/wal.h"

namespace lossyts::serve {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::DisarmAll(); }
};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

WalRecord MakeRecord(const std::string& series, uint64_t first_index,
                     size_t n) {
  WalRecord record;
  record.series = series;
  record.first_timestamp =
      1000 + static_cast<int64_t>(first_index) * 60;
  record.interval_seconds = 60;
  record.first_index = first_index;
  for (size_t i = 0; i < n; ++i) {
    record.values.push_back(static_cast<double>(first_index + i) * 1.25 -
                            3.0);
  }
  return record;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(file)),
                              std::istreambuf_iterator<char>());
}

TEST_F(WalTest, AppendSyncReplayRoundTrip) {
  const std::string path = TempPath("wal_roundtrip.log");
  std::remove(path.c_str());
  auto writer = WalWriter::Open(path, kWalHeaderSize);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  const WalRecord a = MakeRecord("cpu", 0, 5);
  const WalRecord b = MakeRecord("cpu", 5, 3);
  const WalRecord c = MakeRecord("mem-rss", 0, 1);
  ASSERT_TRUE((*writer)->Append(a).ok());
  ASSERT_TRUE((*writer)->Append(b).ok());
  ASSERT_TRUE((*writer)->Append(c).ok());
  ASSERT_TRUE((*writer)->Sync().ok());

  auto replay = ReplayWalFile(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->clean);
  EXPECT_EQ(replay->valid_bytes, (*writer)->bytes());
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->records[0].series, "cpu");
  EXPECT_EQ(replay->records[0].first_index, 0u);
  EXPECT_EQ(replay->records[0].values, a.values);
  EXPECT_EQ(replay->records[1].first_index, 5u);
  EXPECT_EQ(replay->records[1].values, b.values);
  EXPECT_EQ(replay->records[2].series, "mem-rss");
  EXPECT_EQ(replay->records[2].first_timestamp, c.first_timestamp);
}

TEST_F(WalTest, TornTailIsDroppedAndTruncatedOnReopen) {
  const std::string path = TempPath("wal_torn.log");
  std::remove(path.c_str());
  {
    auto writer = WalWriter::Open(path, kWalHeaderSize);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeRecord("a", 0, 4)).ok());
    ASSERT_TRUE((*writer)->Sync().ok());

    // The second record tears mid-frame (the wal_write crash model) and the
    // writer is dead afterwards.
    FailPoints::Arm("wal_write", 1);
    EXPECT_EQ((*writer)->Append(MakeRecord("a", 4, 4)).code(),
              StatusCode::kInternal);
    FailPoints::DisarmAll();
    EXPECT_EQ((*writer)->Append(MakeRecord("a", 8, 1)).code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ((*writer)->Sync().code(), StatusCode::kFailedPrecondition);
  }

  auto replay = ReplayWalFile(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->clean);
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].values.size(), 4u);

  // Reopening truncates the torn tail; new appends continue from the valid
  // prefix and replay cleanly.
  auto reopened = WalWriter::Open(path, replay->valid_bytes);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE((*reopened)->Append(MakeRecord("a", 4, 2)).ok());
  ASSERT_TRUE((*reopened)->Sync().ok());
  auto again = ReplayWalFile(path);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->clean);
  ASSERT_EQ(again->records.size(), 2u);
  EXPECT_EQ(again->records[1].first_index, 4u);
}

TEST_F(WalTest, FsyncFailpointKillsTheWriterBeforeTheSync) {
  const std::string path = TempPath("wal_fsync.log");
  std::remove(path.c_str());
  auto writer = WalWriter::Open(path, kWalHeaderSize);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(MakeRecord("s", 0, 2)).ok());
  FailPoints::Arm("wal_fsync", 1);
  EXPECT_EQ((*writer)->Sync().code(), StatusCode::kInternal);
  FailPoints::DisarmAll();
  // Dead: nothing may be acked through this writer again.
  EXPECT_EQ((*writer)->Append(MakeRecord("s", 2, 1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*writer)->Sync().code(), StatusCode::kFailedPrecondition);

  // The record itself was fully written before the failed sync, so replay
  // legitimately finds it: a complete un-acked record may survive a crash
  // (record-level atomicity), it just must never be half-visible.
  auto replay = ReplayWalFile(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].values.size(), 2u);
}

TEST_F(WalTest, ResetReplacesTheLogAtomically) {
  const std::string path = TempPath("wal_reset.log");
  std::remove(path.c_str());
  {
    auto writer = WalWriter::Open(path, kWalHeaderSize);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeRecord("x", 0, 8)).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  ASSERT_TRUE(ResetWalFile(path).ok());
  auto replay = ReplayWalFile(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->clean);
  EXPECT_TRUE(replay->records.empty());
  EXPECT_EQ(replay->valid_bytes, kWalHeaderSize);
}

TEST_F(WalTest, EmptyOrAlienFileIsCorruptionNotACrash) {
  EXPECT_EQ(ReplayWalBytes({}).status().code(), StatusCode::kCorruption);
  EXPECT_EQ(ReplayWalBytes({0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5})
                .status()
                .code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ReplayWalFile(TempPath("nope_does_not_exist.log"))
                .status()
                .code(),
            StatusCode::kNotFound);
}

// The conform battery over the WAL framing: every structured mutation of a
// valid log must either reject cleanly or replay to exactly the longest
// valid prefix — bit-for-bit reproducible from the replayed records.
TEST_F(WalTest, MutationBatteryHoldsThePrefixContract) {
  const std::string path = TempPath("wal_mutants.log");
  std::remove(path.c_str());
  {
    auto writer = WalWriter::Open(path, kWalHeaderSize);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeRecord("srv.cpu", 0, 16)).ok());
    ASSERT_TRUE((*writer)->Append(MakeRecord("srv.cpu", 16, 16)).ok());
    ASSERT_TRUE((*writer)->Append(MakeRecord("srv.mem", 0, 7)).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  const std::vector<uint8_t> image = ReadFileBytes(path);
  ASSERT_GT(image.size(), kWalHeaderSize);

  // The unmutated image must pass its own oracle.
  EXPECT_FALSE(
      conform::CheckWalMutant(conform::Mutant{"identity", image}).has_value());

  const std::vector<conform::Mutant> mutants =
      conform::GenerateWalMutants(image, 91, 64);
  EXPECT_GT(mutants.size(), 100u);
  size_t failures = 0;
  for (const conform::Mutant& mutant : mutants) {
    if (auto failure = conform::CheckWalMutant(mutant)) {
      ++failures;
      ADD_FAILURE() << failure->detail;
    }
  }
  EXPECT_EQ(failures, 0u);
}

TEST_F(WalTest, MutantGenerationIsDeterministicInTheSeed) {
  const std::string path = TempPath("wal_mutants_det.log");
  std::remove(path.c_str());
  {
    auto writer = WalWriter::Open(path, kWalHeaderSize);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeRecord("d", 0, 9)).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  const std::vector<uint8_t> image = ReadFileBytes(path);
  const auto a = conform::GenerateWalMutants(image, 7, 16);
  const auto b = conform::GenerateWalMutants(image, 7, 16);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].blob, b[i].blob);
  }
}

}  // namespace
}  // namespace lossyts::serve
