#include "forecast/ensemble.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/split.h"
#include "forecast/registry.h"

namespace lossyts::forecast {
namespace {

TimeSeries SineSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = 10.0 +
           3.0 * std::sin(2.0 * 3.14159265 * static_cast<double>(i) / 24.0) +
           0.2 * rng.Normal();
  }
  return TimeSeries(0, 3600, std::move(v));
}

ForecastConfig SmallConfig() {
  ForecastConfig config;
  config.input_length = 48;
  config.horizon = 12;
  config.season_length = 24;
  config.max_epochs = 4;
  config.max_train_windows = 64;
  return config;
}

EnsembleForecaster MakeArimaGBoostEnsemble(std::vector<double> weights = {}) {
  std::vector<std::unique_ptr<Forecaster>> members;
  members.push_back(std::move(*MakeForecaster("Arima", SmallConfig())));
  members.push_back(std::move(*MakeForecaster("GBoost", SmallConfig())));
  return EnsembleForecaster(std::move(members), std::move(weights));
}

TEST(EnsembleTest, NameListsMembers) {
  EnsembleForecaster ensemble = MakeArimaGBoostEnsemble();
  EXPECT_EQ(ensemble.name(), "Ensemble(Arima+GBoost)");
  EXPECT_EQ(ensemble.size(), 2u);
}

TEST(EnsembleTest, PredictionIsWeightedAverageOfMembers) {
  TimeSeries series = SineSeries(700, 1);
  Result<TrainValTest> split = SplitSeries(series);
  ASSERT_TRUE(split.ok());

  // Train the same two members standalone for reference.
  auto arima = std::move(*MakeForecaster("Arima", SmallConfig()));
  auto gboost = std::move(*MakeForecaster("GBoost", SmallConfig()));
  ASSERT_TRUE(arima->Fit(split->train, split->val).ok());
  ASSERT_TRUE(gboost->Fit(split->train, split->val).ok());

  EnsembleForecaster ensemble = MakeArimaGBoostEnsemble({1.0, 3.0});
  ASSERT_TRUE(ensemble.Fit(split->train, split->val).ok());

  std::vector<double> window(split->test.values().begin(),
                             split->test.values().begin() + 48);
  Result<std::vector<double>> a = arima->Predict(window);
  Result<std::vector<double>> g = gboost->Predict(window);
  Result<std::vector<double>> e = ensemble.Predict(window);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(e.ok());
  for (size_t i = 0; i < e->size(); ++i) {
    EXPECT_NEAR((*e)[i], 0.25 * (*a)[i] + 0.75 * (*g)[i], 1e-9);
  }
}

TEST(EnsembleTest, ForecastIsReasonable) {
  TimeSeries series = SineSeries(800, 2);
  Result<TrainValTest> split = SplitSeries(series);
  ASSERT_TRUE(split.ok());
  EnsembleForecaster ensemble = MakeArimaGBoostEnsemble();
  ASSERT_TRUE(ensemble.Fit(split->train, split->val).ok());

  double se = 0.0;
  size_t count = 0;
  const std::vector<double>& test = split->test.values();
  for (size_t start = 0; start + 60 <= test.size(); start += 12) {
    std::vector<double> window(test.begin() + start,
                               test.begin() + start + 48);
    Result<std::vector<double>> pred = ensemble.Predict(window);
    ASSERT_TRUE(pred.ok());
    for (size_t s = 0; s < pred->size(); ++s) {
      const double err = (*pred)[s] - test[start + 48 + s];
      se += err * err;
      ++count;
    }
  }
  // RMSE clearly below the signal's amplitude.
  EXPECT_LT(std::sqrt(se / static_cast<double>(count)), 2.0);
}

TEST(EnsembleTest, PredictBeforeFitFails) {
  EnsembleForecaster ensemble = MakeArimaGBoostEnsemble();
  EXPECT_FALSE(ensemble.Predict(std::vector<double>(48, 1.0)).ok());
}

TEST(EnsembleTest, BadWeightsFail) {
  TimeSeries series = SineSeries(700, 3);
  Result<TrainValTest> split = SplitSeries(series);
  ASSERT_TRUE(split.ok());
  EnsembleForecaster mismatched = MakeArimaGBoostEnsemble({1.0});
  EXPECT_FALSE(mismatched.Fit(split->train, split->val).ok());
  EnsembleForecaster negative = MakeArimaGBoostEnsemble({1.0, -1.0});
  EXPECT_FALSE(negative.Fit(split->train, split->val).ok());
}

TEST(EnsembleTest, EmptyEnsembleFails) {
  EnsembleForecaster ensemble({});
  TimeSeries series = SineSeries(700, 4);
  Result<TrainValTest> split = SplitSeries(series);
  ASSERT_TRUE(split.ok());
  EXPECT_FALSE(ensemble.Fit(split->train, split->val).ok());
}

}  // namespace
}  // namespace lossyts::forecast
