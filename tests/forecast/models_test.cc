#include <cmath>

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/rng.h"
#include "core/split.h"
#include "forecast/arima.h"
#include "forecast/gboost.h"
#include "forecast/registry.h"

namespace lossyts::forecast {
namespace {

constexpr double kPi = 3.14159265358979323846;

// A clean daily-like sine with mild noise; every sane model should beat the
// historical-mean forecast on it.
TimeSeries SineSeries(size_t n, size_t period, double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = 10.0 +
           3.0 * std::sin(2.0 * kPi * static_cast<double>(i) /
                          static_cast<double>(period)) +
           noise * rng.Normal();
  }
  return TimeSeries(0, 3600, std::move(v));
}

// Small shared config that keeps each model's training around a second.
ForecastConfig SmallConfig() {
  ForecastConfig config;
  config.input_length = 48;
  config.horizon = 12;
  config.season_length = 24;
  config.max_epochs = 6;
  config.max_train_windows = 96;
  config.batch_size = 16;
  return config;
}

// RMSE of the model on held-out windows vs. the RMSE of predicting the
// window mean. Returns the ratio (< 1 means the model adds value).
double SkillRatio(Forecaster& model, const TimeSeries& series,
                  const ForecastConfig& config) {
  Result<TrainValTest> split = SplitSeries(series);
  EXPECT_TRUE(split.ok());
  EXPECT_TRUE(model.Fit(split->train, split->val).ok());

  const std::vector<double>& test = split->test.values();
  double model_se = 0.0;
  double naive_se = 0.0;
  size_t count = 0;
  for (size_t start = 0;
       start + config.input_length + config.horizon <= test.size();
       start += config.horizon) {
    std::vector<double> window(test.begin() + start,
                               test.begin() + start + config.input_length);
    Result<std::vector<double>> pred = model.Predict(window);
    EXPECT_TRUE(pred.ok()) << pred.status().ToString();
    if (!pred.ok()) return 1e9;
    double mean = 0.0;
    for (double v : window) mean += v;
    mean /= static_cast<double>(window.size());
    for (size_t s = 0; s < config.horizon; ++s) {
      const double actual = test[start + config.input_length + s];
      model_se += ((*pred)[s] - actual) * ((*pred)[s] - actual);
      naive_se += (mean - actual) * (mean - actual);
    }
    count += config.horizon;
  }
  EXPECT_GT(count, 0u);
  return std::sqrt(model_se / count) / std::sqrt(naive_se / count);
}

class ModelSmokeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelSmokeTest, OutputShapeAndDeterminism) {
  ForecastConfig config = SmallConfig();
  Result<std::unique_ptr<Forecaster>> model =
      MakeForecaster(GetParam(), config);
  ASSERT_TRUE(model.ok());
  TimeSeries series = SineSeries(600, 24, 0.2, 1);
  Result<TrainValTest> split = SplitSeries(series);
  ASSERT_TRUE(split.ok());
  ASSERT_TRUE((*model)->Fit(split->train, split->val).ok());

  std::vector<double> window(split->test.values().begin(),
                             split->test.values().begin() + 48);
  Result<std::vector<double>> a = (*model)->Predict(window);
  Result<std::vector<double>> b = (*model)->Predict(window);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), 12u);
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i], (*b)[i]) << "prediction must be deterministic";
    EXPECT_TRUE(std::isfinite((*a)[i]));
  }
}

TEST_P(ModelSmokeTest, RejectsWrongWindowLength) {
  ForecastConfig config = SmallConfig();
  Result<std::unique_ptr<Forecaster>> model =
      MakeForecaster(GetParam(), config);
  ASSERT_TRUE(model.ok());
  TimeSeries series = SineSeries(600, 24, 0.2, 2);
  Result<TrainValTest> split = SplitSeries(series);
  ASSERT_TRUE(split.ok());
  ASSERT_TRUE((*model)->Fit(split->train, split->val).ok());
  std::vector<double> short_window(10, 1.0);
  EXPECT_FALSE((*model)->Predict(short_window).ok());
}

TEST_P(ModelSmokeTest, PredictBeforeFitFails) {
  Result<std::unique_ptr<Forecaster>> model =
      MakeForecaster(GetParam(), SmallConfig());
  ASSERT_TRUE(model.ok());
  std::vector<double> window(48, 1.0);
  EXPECT_FALSE((*model)->Predict(window).ok());
}

TEST_P(ModelSmokeTest, BeatsNaiveMeanOnCleanSine) {
  ForecastConfig config = SmallConfig();
  Result<std::unique_ptr<Forecaster>> model =
      MakeForecaster(GetParam(), config);
  ASSERT_TRUE(model.ok());
  TimeSeries series = SineSeries(800, 24, 0.15, 3);
  const double ratio = SkillRatio(**model, series, config);
  EXPECT_LT(ratio, 0.95) << GetParam() << " skill ratio " << ratio;
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelSmokeTest,
                         ::testing::ValuesIn(ModelNames()));

TEST(RegistryTest, SevenModelsInTableTwoOrder) {
  const std::vector<std::string>& names = ModelNames();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names.front(), "Arima");
  EXPECT_EQ(names.back(), "Transformer");
}

TEST(RegistryTest, UnknownModelFails) {
  EXPECT_FALSE(MakeForecaster("Prophet", ForecastConfig()).ok());
}

TEST(RegistryTest, DeepModelClassification) {
  EXPECT_FALSE(IsDeepModel("Arima"));
  EXPECT_FALSE(IsDeepModel("GBoost"));
  EXPECT_TRUE(IsDeepModel("GRU"));
  EXPECT_TRUE(IsDeepModel("Transformer"));
  EXPECT_TRUE(IsDeepModel("DLinear"));
}

TEST(ArimaTest, SelectsArStructureOnArData) {
  Rng rng(5);
  std::vector<double> v(1500);
  double x = 0.0;
  for (auto& val : v) {
    x = 0.8 * x + rng.Normal();
    val = x + 20.0;
  }
  ForecastConfig config = SmallConfig();
  config.season_length = 0;  // Pure ARMA.
  ArimaForecaster arima(config);
  TimeSeries series(0, 60, std::move(v));
  Result<TrainValTest> split = SplitSeries(series);
  ASSERT_TRUE(split.ok());
  ASSERT_TRUE(arima.Fit(split->train, split->val).ok());
  // AR(1) data: the selected model should use autoregression (possibly after
  // differencing).
  EXPECT_GE(arima.p() + arima.d() + arima.q(), 1);
}

TEST(ArimaTest, ForecastConvergesTowardsMeanOnArData) {
  Rng rng(6);
  std::vector<double> v(1200);
  double x = 0.0;
  for (auto& val : v) {
    x = 0.7 * x + rng.Normal(0.0, 0.5);
    val = x + 50.0;
  }
  ForecastConfig config;
  config.input_length = 48;
  config.horizon = 24;
  config.season_length = 0;
  ArimaForecaster arima(config);
  TimeSeries series(0, 60, std::move(v));
  Result<TrainValTest> split = SplitSeries(series);
  ASSERT_TRUE(split.ok());
  ASSERT_TRUE(arima.Fit(split->train, split->val).ok());
  std::vector<double> window(split->test.values().begin(),
                             split->test.values().begin() + 48);
  Result<std::vector<double>> pred = arima.Predict(window);
  ASSERT_TRUE(pred.ok());
  // Long-horizon AR forecasts decay toward the process mean (~50).
  EXPECT_NEAR(pred->back(), 50.0, 3.0);
}

TEST(GBoostTest, LagsIncludeSeasonalLag) {
  ForecastConfig config = SmallConfig();
  GBoostForecaster gboost(config);
  TimeSeries series = SineSeries(600, 24, 0.2, 7);
  Result<TrainValTest> split = SplitSeries(series);
  ASSERT_TRUE(split.ok());
  ASSERT_TRUE(gboost.Fit(split->train, split->val).ok());
  bool has_seasonal = false;
  for (size_t lag : gboost.lags()) {
    if (lag == 24) has_seasonal = true;
    EXPECT_LE(lag, config.input_length);
  }
  EXPECT_TRUE(has_seasonal);
}

}  // namespace
}  // namespace lossyts::forecast
