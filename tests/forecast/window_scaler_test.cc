#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "forecast/scaler.h"
#include "forecast/window.h"

namespace lossyts::forecast {
namespace {

TEST(ScalerTest, TransformsToZeroMeanUnitStd) {
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit({2.0, 4.0, 6.0, 8.0}).ok());
  EXPECT_DOUBLE_EQ(scaler.mean(), 5.0);
  EXPECT_NEAR(scaler.Transform(5.0), 0.0, 1e-12);
  EXPECT_NEAR(scaler.Inverse(scaler.Transform(7.3)), 7.3, 1e-12);
}

TEST(ScalerTest, VectorRoundTrip) {
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit({1.0, 2.0, 3.0}).ok());
  std::vector<double> original = {0.5, 1.5, 9.0};
  std::vector<double> back = scaler.Inverse(scaler.Transform(original));
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(back[i], original[i], 1e-12);
  }
}

TEST(ScalerTest, ConstantSeriesUsesUnitScale) {
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit({5.0, 5.0, 5.0}).ok());
  EXPECT_DOUBLE_EQ(scaler.stddev(), 1.0);
  EXPECT_DOUBLE_EQ(scaler.Transform(6.0), 1.0);
}

TEST(ScalerTest, EmptyFails) {
  StandardScaler scaler;
  EXPECT_FALSE(scaler.Fit({}).ok());
  EXPECT_FALSE(scaler.fitted());
}

// Regression (numcheck bug batch): a NaN in the fit data used to flow
// through the mean/stddev into every scaled window — Fit must reject it up
// front, naming the offending index.
TEST(ScalerTest, NonFiniteInputFailsWithOffendingIndex) {
  StandardScaler scaler;
  const Status s = scaler.Fit({1.0, 2.0, std::nan(""), 4.0});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("index 2"), std::string::npos) << s.ToString();
  EXPECT_FALSE(scaler.fitted());

  StandardScaler inf_scaler;
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(inf_scaler.Fit({0.0, -inf, 1.0}).ok());
  EXPECT_FALSE(inf_scaler.fitted());
}

TEST(WindowTest, BasicExtraction) {
  std::vector<double> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  Result<std::vector<WindowExample>> windows = MakeWindows(v, 3, 2, 1);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 6u);
  EXPECT_EQ((*windows)[0].input, (std::vector<double>{0, 1, 2}));
  EXPECT_EQ((*windows)[0].target, (std::vector<double>{3, 4}));
  EXPECT_EQ((*windows)[5].input, (std::vector<double>{5, 6, 7}));
  EXPECT_EQ((*windows)[5].target, (std::vector<double>{8, 9}));
}

TEST(WindowTest, StrideSkipsWindows) {
  std::vector<double> v(20, 0.0);
  Result<std::vector<WindowExample>> windows = MakeWindows(v, 4, 2, 3);
  ASSERT_TRUE(windows.ok());
  EXPECT_EQ(windows->size(), 5u);  // Starts 0,3,6,9,12 (14 is last valid).
}

TEST(WindowTest, MaxWindowsWidensStride) {
  std::vector<double> v(1000, 0.0);
  Result<std::vector<WindowExample>> windows = MakeWindows(v, 10, 5, 1, 10);
  ASSERT_TRUE(windows.ok());
  EXPECT_LE(windows->size(), 10u);
  EXPECT_GE(windows->size(), 8u);
}

TEST(WindowTest, TooShortSeriesFails) {
  std::vector<double> v(5, 0.0);
  EXPECT_FALSE(MakeWindows(v, 4, 2).ok());
}

TEST(WindowTest, InvalidParametersFail) {
  std::vector<double> v(100, 0.0);
  EXPECT_FALSE(MakeWindows(v, 0, 2).ok());
  EXPECT_FALSE(MakeWindows(v, 4, 0).ok());
  EXPECT_FALSE(MakeWindows(v, 4, 2, 0).ok());
}

TEST(WindowTest, ExactFitProducesOneWindow) {
  std::vector<double> v(6, 1.0);
  Result<std::vector<WindowExample>> windows = MakeWindows(v, 4, 2);
  ASSERT_TRUE(windows.ok());
  EXPECT_EQ(windows->size(), 1u);
}

}  // namespace
}  // namespace lossyts::forecast
