// Tests of the multi-seed replication machinery (§3.6): different seeds must
// produce genuinely different deep models, and the same seed must reproduce
// the same model bit for bit.

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/split.h"
#include "forecast/registry.h"

namespace lossyts::forecast {
namespace {

TimeSeries SineSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = 10.0 +
           3.0 * std::sin(2.0 * 3.14159265 * static_cast<double>(i) / 24.0) +
           0.3 * rng.Normal();
  }
  return TimeSeries(0, 3600, std::move(v));
}

ForecastConfig SmallConfig(uint64_t seed) {
  ForecastConfig config;
  config.input_length = 48;
  config.horizon = 12;
  config.season_length = 24;
  config.max_epochs = 3;
  config.max_train_windows = 48;
  config.seed = seed;
  return config;
}

std::vector<double> TrainAndPredict(const std::string& model_name,
                                    uint64_t seed) {
  TimeSeries series = SineSeries(600, 99);
  Result<TrainValTest> split = SplitSeries(series);
  EXPECT_TRUE(split.ok());
  Result<std::unique_ptr<Forecaster>> model =
      MakeForecaster(model_name, SmallConfig(seed));
  EXPECT_TRUE(model.ok());
  EXPECT_TRUE((*model)->Fit(split->train, split->val).ok());
  std::vector<double> window(split->test.values().begin(),
                             split->test.values().begin() + 48);
  Result<std::vector<double>> pred = (*model)->Predict(window);
  EXPECT_TRUE(pred.ok());
  return pred.ok() ? *pred : std::vector<double>();
}

class SeedReplicationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SeedReplicationTest, SameSeedReproducesExactly) {
  const std::vector<double> a = TrainAndPredict(GetParam(), 7);
  const std::vector<double> b = TrainAndPredict(GetParam(), 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << GetParam() << " step " << i;
  }
}

TEST_P(SeedReplicationTest, DifferentSeedsDifferForDeepModels) {
  const std::vector<double> a = TrainAndPredict(GetParam(), 1);
  const std::vector<double> b = TrainAndPredict(GetParam(), 2);
  ASSERT_EQ(a.size(), b.size());
  if (IsDeepModel(GetParam())) {
    double max_diff = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
    }
    EXPECT_GT(max_diff, 0.0)
        << GetParam() << ": random init must depend on the seed";
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, SeedReplicationTest,
                         ::testing::Values("DLinear", "GRU", "NBeats",
                                           "Transformer", "Informer",
                                           "GBoost", "Arima"));

}  // namespace
}  // namespace lossyts::forecast
