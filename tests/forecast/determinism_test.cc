// Regression for the training-determinism contract (numcheck bug batch):
// fitting the same seeded forecaster must produce bit-identical predictions
// whether training runs on the calling thread or inside a multi-worker
// thread pool. Any dependence on thread identity, shared hidden state, or
// scheduling order shows up as a byte difference here.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/split.h"
#include "core/thread_pool.h"
#include "forecast/registry.h"

namespace lossyts::forecast {
namespace {

TimeSeries NoisySine(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = 10.0 +
           3.0 * std::sin(2.0 * 3.14159265 * static_cast<double>(i) / 24.0) +
           0.3 * rng.Normal();
  }
  return TimeSeries(0, 3600, std::move(v));
}

ForecastConfig TinyConfig(uint64_t seed) {
  ForecastConfig config;
  config.input_length = 24;
  config.horizon = 6;
  config.season_length = 24;
  config.max_epochs = 2;
  config.max_train_windows = 32;
  config.seed = seed;
  return config;
}

std::vector<double> FitAndPredict(const std::string& model_name) {
  TimeSeries series = NoisySine(400, 17);
  Result<TrainValTest> split = SplitSeries(series);
  EXPECT_TRUE(split.ok());
  Result<std::unique_ptr<Forecaster>> model =
      MakeForecaster(model_name, TinyConfig(5));
  EXPECT_TRUE(model.ok());
  EXPECT_TRUE((*model)->Fit(split->train, split->val).ok());
  std::vector<double> window(split->test.values().begin(),
                             split->test.values().begin() + 24);
  Result<std::vector<double>> pred = (*model)->Predict(window);
  EXPECT_TRUE(pred.ok());
  return pred.ok() ? *pred : std::vector<double>();
}

void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b, const std::string& tag) {
  ASSERT_EQ(a.size(), b.size()) << tag;
  ASSERT_FALSE(a.empty()) << tag;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
      << tag << ": same-seed fits diverged";
}

class TrainingDeterminismTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(TrainingDeterminismTest, PoolWorkersMatchInlineFitBitForBit) {
  const std::vector<double> inline_pred = FitAndPredict(GetParam());

  std::vector<std::vector<double>> pool_preds(3);
  ThreadPool pool(4);
  for (size_t i = 0; i < pool_preds.size(); ++i) {
    pool.Submit([&, i] { pool_preds[i] = FitAndPredict(GetParam()); });
  }
  pool.Wait();

  for (size_t i = 0; i < pool_preds.size(); ++i) {
    ExpectBitIdentical(inline_pred, pool_preds[i],
                       GetParam() + " replica " + std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(DeepModels, TrainingDeterminismTest,
                         ::testing::Values("DLinear", "GRU"));

}  // namespace
}  // namespace lossyts::forecast
