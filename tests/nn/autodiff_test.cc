#include "nn/autodiff.h"

#include <cmath>
#include <functional>
#include <limits>

#include <gtest/gtest.h>

namespace lossyts::nn {
namespace {

// Numerical gradient check: builds a scalar loss from `forward` applied to a
// leaf of the given shape, then compares Backward()'s gradient against
// central finite differences.
void CheckGradients(size_t rows, size_t cols,
                    const std::function<Var(const Var&)>& forward,
                    uint64_t seed = 1, double tolerance = 1e-6) {
  Rng rng(seed);
  Tensor init(rows, cols);
  for (double& v : init.storage()) v = rng.Uniform(-1.0, 1.0);

  Var leaf = MakeVar(init, /*requires_grad=*/true);
  Var loss = forward(leaf);
  ASSERT_EQ(loss->value.rows(), 1u);
  ASSERT_EQ(loss->value.cols(), 1u);
  Backward(loss);
  const Tensor analytic = leaf->grad;

  const double h = 1e-6;
  for (size_t i = 0; i < init.size(); ++i) {
    Tensor plus = init;
    plus.storage()[i] += h;
    Tensor minus = init;
    minus.storage()[i] -= h;
    const double f_plus =
        forward(MakeVar(plus, true))->value(0, 0);
    const double f_minus =
        forward(MakeVar(minus, true))->value(0, 0);
    const double numeric = (f_plus - f_minus) / (2.0 * h);
    EXPECT_NEAR(analytic.storage()[i], numeric, tolerance)
        << "entry " << i;
  }
}

Tensor RandomTensor(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Tensor t(rows, cols);
  for (double& v : t.storage()) v = rng.Uniform(-1.0, 1.0);
  return t;
}

TEST(AutodiffTest, MeanGradient) {
  CheckGradients(3, 4, [](const Var& x) { return Mean(x); });
}

TEST(AutodiffTest, MatMulGradientLeft) {
  const Tensor b = RandomTensor(4, 2, 42);
  CheckGradients(3, 4, [&](const Var& x) {
    return Mean(MatMul(x, MakeVar(b)));
  });
}

TEST(AutodiffTest, MatMulGradientRight) {
  const Tensor a = RandomTensor(3, 4, 43);
  CheckGradients(4, 2, [&](const Var& x) {
    return Mean(MatMul(MakeVar(a), x));
  });
}

TEST(AutodiffTest, AddSubMulGradients) {
  const Tensor other = RandomTensor(3, 3, 44);
  CheckGradients(3, 3, [&](const Var& x) {
    return Mean(Mul(Add(x, MakeVar(other)), Sub(x, MakeVar(other))));
  });
}

TEST(AutodiffTest, AddRowBroadcastGradientOfBias) {
  const Tensor a = RandomTensor(5, 3, 45);
  CheckGradients(1, 3, [&](const Var& bias) {
    return Mean(AddRowBroadcast(MakeVar(a), bias));
  });
}

TEST(AutodiffTest, ScaleGradient) {
  CheckGradients(2, 3, [](const Var& x) { return Mean(Scale(x, -2.5)); });
}

TEST(AutodiffTest, SigmoidGradient) {
  CheckGradients(2, 5, [](const Var& x) { return Mean(Sigmoid(x)); });
}

TEST(AutodiffTest, TanhGradient) {
  CheckGradients(2, 5, [](const Var& x) { return Mean(Tanh(x)); });
}

TEST(AutodiffTest, ReluGradient) {
  // Shift away from the kink at zero for a clean finite-difference check.
  CheckGradients(2, 5, [](const Var& x) {
    return Mean(Relu(Add(x, MakeVar(Tensor(2, 5, 0.1)))));
  });
}

TEST(AutodiffTest, GeluGradient) {
  CheckGradients(2, 5, [](const Var& x) { return Mean(Gelu(x)); }, 7, 1e-5);
}

TEST(AutodiffTest, SoftmaxGradient) {
  const Tensor w = RandomTensor(3, 4, 46);
  CheckGradients(3, 4, [&](const Var& x) {
    return Mean(Mul(Softmax(x), MakeVar(w)));
  });
}

TEST(AutodiffTest, SoftmaxRowsSumToOne) {
  Var x = MakeVar(RandomTensor(4, 6, 47));
  Var y = Softmax(x);
  for (size_t r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 6; ++c) sum += y->value(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(AutodiffTest, SoftmaxMaskBlocksPositions) {
  Var x = MakeVar(Tensor(1, 3, 0.0));
  Tensor mask(1, 3, 0.0);
  mask(0, 2) = -1e9;
  Var y = Softmax(x, &mask);
  EXPECT_NEAR(y->value(0, 0), 0.5, 1e-9);
  EXPECT_NEAR(y->value(0, 1), 0.5, 1e-9);
  EXPECT_NEAR(y->value(0, 2), 0.0, 1e-12);
}

// Regression (numcheck bug batch): a row masked to -inf in every position
// used to produce exp(-inf - -inf) = NaN values that poisoned the whole
// graph. Such rows are defined as uniform with zero gradient; open rows in
// the same tensor must be unaffected.
TEST(AutodiffTest, SoftmaxFullyMaskedRowIsUniformWithZeroGradient) {
  const double inf = std::numeric_limits<double>::infinity();
  Var x = MakeVar(RandomTensor(2, 4, 50), /*requires_grad=*/true);
  Tensor mask(2, 4, 0.0);
  for (size_t c = 0; c < 4; ++c) mask(1, c) = -inf;
  Var y = Softmax(x, &mask);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_DOUBLE_EQ(y->value(1, c), 0.25) << "col " << c;
  }
  double open_row_sum = 0.0;
  for (size_t c = 0; c < 4; ++c) open_row_sum += y->value(0, c);
  EXPECT_NEAR(open_row_sum, 1.0, 1e-12);

  const Tensor w = RandomTensor(2, 4, 51);
  Backward(Mean(Mul(y, MakeVar(w))));
  double open_row_grad = 0.0;
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_DOUBLE_EQ(x->grad(1, c), 0.0) << "col " << c;
    ASSERT_TRUE(std::isfinite(x->grad(0, c))) << "col " << c;
    open_row_grad += std::abs(x->grad(0, c));
  }
  EXPECT_GT(open_row_grad, 0.0);  // The open row still learns.
}

TEST(AutodiffTest, LayerNormGradient) {
  const Tensor gain = RandomTensor(1, 4, 48);
  const Tensor bias = RandomTensor(1, 4, 49);
  CheckGradients(3, 4, [&](const Var& x) {
    return Mean(LayerNorm(x, MakeVar(gain, true), MakeVar(bias, true)));
  }, 2, 1e-5);
}

TEST(AutodiffTest, LayerNormGainBiasGradients) {
  const Tensor a = RandomTensor(3, 4, 50);
  const Tensor bias = RandomTensor(1, 4, 51);
  CheckGradients(1, 4, [&](const Var& gain) {
    const Tensor w = RandomTensor(3, 4, 52);
    return Mean(Mul(LayerNorm(MakeVar(a, true), gain, MakeVar(bias, true)),
                    MakeVar(w)));
  });
}

TEST(AutodiffTest, TransposeGradient) {
  const Tensor w = RandomTensor(4, 3, 53);
  CheckGradients(3, 4, [&](const Var& x) {
    return Mean(Mul(Transpose(x), MakeVar(w)));
  });
}

TEST(AutodiffTest, SliceGradients) {
  const Tensor w = RandomTensor(2, 2, 54);
  CheckGradients(4, 4, [&](const Var& x) {
    return Mean(Mul(SliceRows(SliceCols(x, 1, 3), 0, 2), MakeVar(w)));
  });
}

TEST(AutodiffTest, ConcatGradients) {
  const Tensor b = RandomTensor(2, 3, 55);
  CheckGradients(2, 3, [&](const Var& x) {
    const Var rows = ConcatRows(x, MakeVar(b, true));
    const Var cols = ConcatCols(x, MakeVar(b, true));
    return Add(Mean(rows), Mean(cols));
  });
}

TEST(AutodiffTest, MseLossGradient) {
  const Tensor target = RandomTensor(3, 2, 56);
  CheckGradients(3, 2, [&](const Var& x) {
    return MseLoss(x, MakeVar(target));
  });
}

TEST(AutodiffTest, StridedRowPoolGradient) {
  const Tensor w = RandomTensor(3, 2, 57);
  CheckGradients(5, 2, [&](const Var& x) {
    return Mean(Mul(StridedRowPool(x, 2), MakeVar(w)));
  });
}

TEST(AutodiffTest, StridedRowPoolShape) {
  Var x = MakeVar(RandomTensor(96, 8, 58));
  EXPECT_EQ(StridedRowPool(x, 2)->value.rows(), 48u);
  EXPECT_EQ(StridedRowPool(x, 3)->value.rows(), 32u);
}

TEST(AutodiffTest, DropoutTrainingScalesExpectation) {
  Rng rng(59);
  Var x = MakeVar(Tensor(100, 100, 1.0));
  Var y = Dropout(x, 0.5, /*train=*/true, rng);
  double mean = 0.0;
  for (double v : y->value.storage()) mean += v;
  mean /= static_cast<double>(y->value.size());
  EXPECT_NEAR(mean, 1.0, 0.05);
}

TEST(AutodiffTest, DropoutEvalIsIdentity) {
  Rng rng(60);
  Var x = MakeVar(RandomTensor(5, 5, 61));
  Var y = Dropout(x, 0.5, /*train=*/false, rng);
  for (size_t i = 0; i < x->value.size(); ++i) {
    EXPECT_EQ(y->value.storage()[i], x->value.storage()[i]);
  }
}

TEST(AutodiffTest, ChainedGraphGradient) {
  // A small multi-layer expression exercising reuse of one node twice.
  const Tensor w1 = RandomTensor(4, 4, 62);
  CheckGradients(2, 4, [&](const Var& x) {
    const Var h = Tanh(MatMul(x, MakeVar(w1)));
    return Mean(Mul(h, h));  // h used twice: gradient accumulation.
  }, 3, 1e-5);
}

TEST(AutodiffTest, BackwardTwiceIsIndependent) {
  Var x = MakeVar(RandomTensor(2, 2, 63), true);
  Var loss = Mean(Mul(x, x));
  Backward(loss);
  const Tensor first = x->grad;
  Backward(loss);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_NEAR(x->grad.storage()[i], first.storage()[i], 1e-12);
  }
}

}  // namespace
}  // namespace lossyts::nn
