// Tests of the Adam rejected-step contract (numcheck bug batch): a step with
// non-finite gradients must fail without mutating any optimizer state, so
// training can continue exactly as if the diverged batch had never happened.

#include "nn/optimizer.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace lossyts::nn {
namespace {

Tensor SampleTensor(double offset) {
  Tensor t(2, 3);
  for (size_t i = 0; i < t.size(); ++i) {
    t.storage()[i] = offset + 0.1 * static_cast<double>(i);
  }
  return t;
}

void SetGrad(const Var& p, double scale) {
  p->grad = Tensor(p->value.rows(), p->value.cols());
  for (size_t i = 0; i < p->grad.size(); ++i) {
    p->grad.storage()[i] = scale * (static_cast<double>(i) - 2.5);
  }
}

TEST(AdamTest, FiniteStepUpdatesParameters) {
  Var p = MakeVar(SampleTensor(1.0), /*requires_grad=*/true);
  Adam adam({p});
  SetGrad(p, 1.0);
  ASSERT_TRUE(adam.Step().ok());
  EXPECT_NE(p->value(0, 0), SampleTensor(1.0)(0, 0));
  // Step() clears the gradients for the next accumulation.
  for (double g : p->grad.storage()) EXPECT_EQ(g, 0.0);
}

TEST(AdamTest, NonFiniteGradientIsRejected) {
  Var p = MakeVar(SampleTensor(1.0), /*requires_grad=*/true);
  Adam adam({p});
  SetGrad(p, 1.0);
  p->grad(0, 1) = std::nan("");
  const Status s = adam.Step();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  // Parameters are untouched and the poisoned gradients are cleared.
  const Tensor fresh = SampleTensor(1.0);
  for (size_t i = 0; i < p->value.size(); ++i) {
    EXPECT_EQ(p->value.storage()[i], fresh.storage()[i]) << "entry " << i;
  }
  for (double g : p->grad.storage()) EXPECT_EQ(g, 0.0);
}

// The core of the contract: an optimizer that saw (and rejected) a diverged
// batch must follow the exact same trajectory afterwards as one that never
// saw it — bit for bit. Any leak of the rejected step into m/v or the
// bias-correction step count shows up as a parameter difference.
TEST(AdamTest, RejectedStepLeavesTrajectoryBitIdentical) {
  Var clean = MakeVar(SampleTensor(1.0), /*requires_grad=*/true);
  Var poisoned = MakeVar(SampleTensor(1.0), /*requires_grad=*/true);
  Adam clean_adam({clean});
  Adam poisoned_adam({poisoned});

  SetGrad(poisoned, 1.0);
  poisoned->grad(1, 2) = std::numeric_limits<double>::infinity();
  ASSERT_FALSE(poisoned_adam.Step().ok());

  for (int step = 0; step < 5; ++step) {
    const double scale = 1.0 + 0.25 * static_cast<double>(step);
    SetGrad(clean, scale);
    SetGrad(poisoned, scale);
    ASSERT_TRUE(clean_adam.Step().ok());
    ASSERT_TRUE(poisoned_adam.Step().ok());
    for (size_t i = 0; i < clean->value.size(); ++i) {
      ASSERT_EQ(clean->value.storage()[i], poisoned->value.storage()[i])
          << "step " << step << " entry " << i;
    }
  }
}

}  // namespace
}  // namespace lossyts::nn
