#include "nn/module.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/attention.h"
#include "nn/optimizer.h"

namespace lossyts::nn {
namespace {

TEST(LinearTest, ShapeAndParameterCount) {
  Rng rng(1);
  Linear linear(8, 4, rng);
  EXPECT_EQ(linear.NumParameters(), 8u * 4u + 4u);
  Var x = MakeVar(Tensor(3, 8, 1.0));
  Var y = linear.Forward(x);
  EXPECT_EQ(y->value.rows(), 3u);
  EXPECT_EQ(y->value.cols(), 4u);
}

TEST(LinearTest, LearnsLinearMap) {
  Rng rng(2);
  Linear linear(2, 1, rng);
  Adam::Options opt;
  opt.learning_rate = 0.05;
  opt.weight_decay = 0.0;
  Adam adam(linear.Parameters(), opt);

  // Target: y = 3*x0 - 2*x1 + 1.
  for (int step = 0; step < 500; ++step) {
    Tensor batch(16, 2);
    Tensor target(16, 1);
    for (size_t i = 0; i < 16; ++i) {
      batch(i, 0) = rng.Uniform(-1.0, 1.0);
      batch(i, 1) = rng.Uniform(-1.0, 1.0);
      target(i, 0) = 3.0 * batch(i, 0) - 2.0 * batch(i, 1) + 1.0;
    }
    Var loss = MseLoss(linear.Forward(MakeVar(batch)), MakeVar(target));
    Backward(loss);
    adam.Step();
  }
  Tensor probe(1, 2);
  probe(0, 0) = 0.5;
  probe(0, 1) = -0.5;
  Var y = linear.Forward(MakeVar(probe));
  EXPECT_NEAR(y->value(0, 0), 3.0 * 0.5 - 2.0 * -0.5 + 1.0, 0.05);
}

TEST(LayerNormModuleTest, NormalizesRows) {
  LayerNormModule norm(6);
  Rng rng(3);
  Tensor x(4, 6);
  for (double& v : x.storage()) v = rng.Uniform(0.0, 100.0);
  Var y = norm.Forward(MakeVar(x));
  for (size_t r = 0; r < 4; ++r) {
    double mean = 0.0;
    for (size_t c = 0; c < 6; ++c) mean += y->value(r, c);
    mean /= 6.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
  }
}

TEST(GruCellTest, OutputShapeAndRange) {
  Rng rng(4);
  GruCell cell(3, 8, rng);
  Var x = MakeVar(Tensor(1, 3, 0.5));
  Var h = MakeVar(Tensor(1, 8, 0.0));
  Var h_next = cell.Forward(x, h);
  EXPECT_EQ(h_next->value.rows(), 1u);
  EXPECT_EQ(h_next->value.cols(), 8u);
  for (double v : h_next->value.storage()) {
    EXPECT_GT(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(GruCellTest, ParameterCount) {
  Rng rng(5);
  GruCell cell(3, 8, rng);
  // 3 gates x (3*8 input + 8*8 hidden + 8 bias).
  EXPECT_EQ(cell.NumParameters(), 3u * (3 * 8 + 8 * 8 + 8));
}

TEST(GruCellTest, LearnsToRememberInput) {
  // Task: output after 5 steps should equal the first input value.
  Rng rng(6);
  GruCell cell(1, 8, rng);
  Linear head(8, 1, rng);
  std::vector<Var> params = cell.Parameters();
  for (const Var& p : head.Parameters()) params.push_back(p);
  Adam::Options opt;
  opt.learning_rate = 0.01;
  opt.weight_decay = 0.0;
  Adam adam(params, opt);

  double final_loss = 1e9;
  for (int step = 0; step < 400; ++step) {
    const double value = rng.Uniform(-1.0, 1.0);
    Var h = MakeVar(Tensor(1, 8, 0.0));
    for (int t = 0; t < 5; ++t) {
      Tensor input(1, 1, t == 0 ? value : 0.0);
      h = cell.Forward(MakeVar(input), h);
    }
    Var pred = head.Forward(h);
    Var loss = MseLoss(pred, MakeVar(Tensor(1, 1, value)));
    final_loss = loss->value(0, 0);
    Backward(loss);
    adam.Step();
  }
  EXPECT_LT(final_loss, 0.1);
}

TEST(AttentionTest, OutputShape) {
  Rng rng(7);
  MultiHeadAttention mha(16, 4, rng);
  Var x = MakeVar(Tensor(10, 16, 0.1));
  Var y = mha.Forward(x, x, x);
  EXPECT_EQ(y->value.rows(), 10u);
  EXPECT_EQ(y->value.cols(), 16u);
}

TEST(AttentionTest, CrossAttentionShapes) {
  Rng rng(8);
  MultiHeadAttention mha(8, 2, rng);
  Var q = MakeVar(Tensor(5, 8, 0.1));
  Var kv = MakeVar(Tensor(12, 8, 0.2));
  Var y = mha.Forward(q, kv, kv);
  EXPECT_EQ(y->value.rows(), 5u);
  EXPECT_EQ(y->value.cols(), 8u);
}

TEST(AttentionTest, CausalMaskPreventsFutureLeakage) {
  Rng rng(9);
  MultiHeadAttention mha(8, 2, rng);
  // Two inputs identical in the first 3 rows, different afterwards: with a
  // causal mask, outputs at rows 0-2 must agree.
  Tensor a(6, 8);
  Tensor b(6, 8);
  Rng data_rng(10);
  for (size_t r = 0; r < 6; ++r) {
    for (size_t c = 0; c < 8; ++c) {
      a(r, c) = data_rng.Uniform(-1.0, 1.0);
      b(r, c) = r < 3 ? a(r, c) : data_rng.Uniform(-1.0, 1.0);
    }
  }
  Var ya = mha.Forward(MakeVar(a), MakeVar(a), MakeVar(a), /*causal=*/true);
  Var yb = mha.Forward(MakeVar(b), MakeVar(b), MakeVar(b), /*causal=*/true);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 8; ++c) {
      EXPECT_NEAR(ya->value(r, c), yb->value(r, c), 1e-9);
    }
  }
}

TEST(AttentionTest, ProbSparseShapeMatchesFull) {
  Rng rng(11);
  MultiHeadAttention mha(16, 4, rng);
  Var x = MakeVar(Tensor(24, 16, 0.3));
  Var sparse = mha.ForwardProbSparse(x);
  EXPECT_EQ(sparse->value.rows(), 24u);
  EXPECT_EQ(sparse->value.cols(), 16u);
}

TEST(AttentionTest, ProbSparseGradientsFlow) {
  Rng rng(12);
  MultiHeadAttention mha(8, 2, rng);
  Var x = MakeVar(Tensor(12, 8, 0.2), /*requires_grad=*/true);
  Var loss = Mean(mha.ForwardProbSparse(x));
  Backward(loss);
  double grad_norm = 0.0;
  for (double g : x->grad.storage()) grad_norm += g * g;
  EXPECT_GT(grad_norm, 0.0);
}

TEST(EncoderLayerTest, ForwardShapeAndGradients) {
  Rng rng(13);
  TransformerEncoderLayer layer(16, 4, 32, 0.0, rng);
  Var x = MakeVar(Tensor(10, 16, 0.1), true);
  Var y = layer.Forward(x, /*train=*/false, rng);
  EXPECT_EQ(y->value.rows(), 10u);
  EXPECT_EQ(y->value.cols(), 16u);
  Backward(Mean(y));
  EXPECT_GT(layer.NumParameters(), 0u);
}

TEST(DecoderLayerTest, ForwardShape) {
  Rng rng(14);
  TransformerDecoderLayer layer(16, 4, 32, 0.0, rng);
  Var x = MakeVar(Tensor(6, 16, 0.1));
  Var memory = MakeVar(Tensor(10, 16, 0.2));
  Var y = layer.Forward(x, memory, /*train=*/false, rng);
  EXPECT_EQ(y->value.rows(), 6u);
  EXPECT_EQ(y->value.cols(), 16u);
}

TEST(PositionalEncodingTest, ValuesInRangeAndVaryByPosition) {
  Tensor pe = PositionalEncoding(50, 16);
  EXPECT_EQ(pe.rows(), 50u);
  EXPECT_EQ(pe.cols(), 16u);
  for (double v : pe.storage()) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
  // Row 0 differs from row 10.
  bool differs = false;
  for (size_t c = 0; c < 16; ++c) {
    if (std::abs(pe(0, c) - pe(10, c)) > 1e-6) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize ||x - target||^2 directly over a parameter tensor.
  Var x = MakeVar(Tensor(1, 4, 0.0), true);
  Tensor target(1, 4);
  target(0, 0) = 1.0;
  target(0, 1) = -2.0;
  target(0, 2) = 3.0;
  target(0, 3) = 0.5;
  Adam::Options opt;
  opt.learning_rate = 0.05;
  opt.weight_decay = 0.0;
  Adam adam({x}, opt);
  for (int i = 0; i < 500; ++i) {
    Var loss = MseLoss(x, MakeVar(target));
    Backward(loss);
    adam.Step();
  }
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(x->value(0, c), target(0, c), 0.01);
  }
}

TEST(AdamTest, WeightDecayShrinksUnusedParameters) {
  Var used = MakeVar(Tensor(1, 1, 1.0), true);
  Var x = MakeVar(Tensor(1, 1, 5.0), true);
  Adam::Options opt;
  opt.weight_decay = 0.1;
  opt.learning_rate = 0.01;
  Adam adam({x, used}, opt);
  for (int i = 0; i < 100; ++i) {
    Var loss = MseLoss(used, MakeVar(Tensor(1, 1, 1.0)));
    Backward(loss);
    // x has a zeroed gradient (from ZeroGrad) and decays toward zero.
    adam.Step();
  }
  EXPECT_LT(std::abs(x->value(0, 0)), 5.0);
}

}  // namespace
}  // namespace lossyts::nn
