// Finite-difference gradient checks through the composite attention layers —
// the pieces whose backward passes chain a dozen primitive ops.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/attention.h"

namespace lossyts::nn {
namespace {

// Numeric/analytic gradient comparison of d(mean(f(x)))/dx.
void CheckInputGradient(size_t rows, size_t cols,
                        const std::function<Var(const Var&)>& f,
                        double tolerance = 2e-5) {
  Rng rng(17);
  Tensor init(rows, cols);
  for (double& v : init.storage()) v = rng.Uniform(-0.5, 0.5);

  Var leaf = MakeVar(init, true);
  Var loss = Mean(f(leaf));
  Backward(loss);
  const Tensor analytic = leaf->grad;

  const double h = 1e-5;
  // Spot-check a deterministic subset of entries (full sweeps are slow).
  for (size_t i = 0; i < init.size(); i += 7) {
    Tensor plus = init;
    plus.storage()[i] += h;
    Tensor minus = init;
    minus.storage()[i] -= h;
    const double fp = Mean(f(MakeVar(plus, true)))->value(0, 0);
    const double fm = Mean(f(MakeVar(minus, true)))->value(0, 0);
    EXPECT_NEAR(analytic.storage()[i], (fp - fm) / (2.0 * h), tolerance)
        << "entry " << i;
  }
}

TEST(AttentionGradTest, SelfAttentionInputGradient) {
  Rng rng(1);
  MultiHeadAttention mha(8, 2, rng);
  CheckInputGradient(6, 8, [&](const Var& x) {
    return mha.Forward(x, x, x);
  });
}

TEST(AttentionGradTest, CausalSelfAttentionInputGradient) {
  Rng rng(2);
  MultiHeadAttention mha(8, 2, rng);
  CheckInputGradient(6, 8, [&](const Var& x) {
    return mha.Forward(x, x, x, /*causal=*/true);
  });
}

TEST(AttentionGradTest, CrossAttentionQueryGradient) {
  Rng rng(3);
  MultiHeadAttention mha(8, 2, rng);
  Rng data_rng(4);
  Tensor memory(9, 8);
  for (double& v : memory.storage()) v = data_rng.Uniform(-0.5, 0.5);
  const Var mem = MakeVar(memory);
  CheckInputGradient(5, 8, [&](const Var& q) {
    return mha.Forward(q, mem, mem);
  });
}

TEST(AttentionGradTest, EncoderLayerInputGradient) {
  Rng rng(5);
  TransformerEncoderLayer layer(8, 2, 16, 0.0, rng);
  Rng fwd_rng(6);
  CheckInputGradient(6, 8, [&](const Var& x) {
    return layer.Forward(x, /*train=*/false, fwd_rng);
  });
}

TEST(AttentionGradTest, DecoderLayerInputGradient) {
  Rng rng(7);
  TransformerDecoderLayer layer(8, 2, 16, 0.0, rng);
  Rng data_rng(8);
  Tensor memory(7, 8);
  for (double& v : memory.storage()) v = data_rng.Uniform(-0.5, 0.5);
  const Var mem = MakeVar(memory);
  Rng fwd_rng(9);
  CheckInputGradient(5, 8, [&](const Var& x) {
    return layer.Forward(x, mem, /*train=*/false, fwd_rng);
  });
}

TEST(AttentionGradTest, ParameterGradientsFlowThroughEncoder) {
  Rng rng(10);
  TransformerEncoderLayer layer(8, 2, 16, 0.0, rng);
  Tensor input(6, 8);
  Rng data_rng(12);
  for (double& v : input.storage()) v = data_rng.Uniform(-1.0, 1.0);
  Var x = MakeVar(std::move(input));
  Rng fwd_rng(11);
  Backward(Mean(layer.Forward(x, false, fwd_rng)));
  size_t nonzero_params = 0;
  for (const Var& p : layer.Parameters()) {
    if (p->grad.size() != p->value.size()) continue;
    for (double g : p->grad.storage()) {
      if (g != 0.0) {
        ++nonzero_params;
        break;
      }
    }
  }
  // Every weight matrix should receive gradient signal.
  EXPECT_GT(nonzero_params, layer.Parameters().size() / 2);
}

}  // namespace
}  // namespace lossyts::nn
