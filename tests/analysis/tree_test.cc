#include "analysis/tree.h"

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/gbm.h"
#include "core/rng.h"

namespace lossyts::analysis {
namespace {

// y = 10 when x0 <= 0.5 else -10; perfectly learnable with one split.
void MakeStepData(std::vector<std::vector<double>>* rows,
                  std::vector<double>* y, size_t n, uint64_t seed) {
  Rng rng(seed);
  rows->clear();
  y->clear();
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform();
    const double x1 = rng.Uniform();
    rows->push_back({x0, x1});
    y->push_back(x0 <= 0.5 ? 10.0 : -10.0);
  }
}

TEST(TreeTest, LearnsSingleSplit) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  MakeStepData(&rows, &y, 200, 1);
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(rows, y).ok());
  EXPECT_NEAR(tree.Predict({0.2, 0.9}), 10.0, 1e-9);
  EXPECT_NEAR(tree.Predict({0.8, 0.1}), -10.0, 1e-9);
}

TEST(TreeTest, RootCoverEqualsSampleCount) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  MakeStepData(&rows, &y, 150, 2);
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(rows, y).ok());
  EXPECT_DOUBLE_EQ(tree.nodes()[0].cover, 150.0);
  // Children covers sum to the parent's.
  const TreeNode& root = tree.nodes()[0];
  ASSERT_GE(root.feature, 0);
  EXPECT_DOUBLE_EQ(tree.nodes()[root.left].cover +
                       tree.nodes()[root.right].cover,
                   root.cover);
}

TEST(TreeTest, ConstantTargetGivesSingleLeaf) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    rows.push_back({rng.Uniform()});
    y.push_back(7.0);
  }
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(rows, y).ok());
  EXPECT_NEAR(tree.Predict({0.5}), 7.0, 1e-9);
}

TEST(TreeTest, RespectsMaxDepth) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform();
    rows.push_back({x});
    y.push_back(std::sin(10.0 * x));
  }
  RegressionTree::Options options;
  options.max_depth = 2;
  RegressionTree tree(options);
  ASSERT_TRUE(tree.Fit(rows, y).ok());
  // Depth-2 tree has at most 7 nodes.
  EXPECT_LE(tree.nodes().size(), 7u);
}

TEST(TreeTest, MinSamplesLeafRespected) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  MakeStepData(&rows, &y, 30, 5);
  RegressionTree::Options options;
  options.min_samples_leaf = 10;
  RegressionTree tree(options);
  ASSERT_TRUE(tree.Fit(rows, y).ok());
  for (const TreeNode& node : tree.nodes()) {
    if (node.feature < 0) {
      EXPECT_GE(node.cover, 10.0);
    }
  }
}

TEST(TreeTest, FitWithSubsetOnlyUsesSubset) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  MakeStepData(&rows, &y, 100, 6);
  // Subset where all targets are from the left regime.
  std::vector<size_t> subset;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i][0] <= 0.5) subset.push_back(i);
  }
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(rows, y, subset).ok());
  EXPECT_NEAR(tree.Predict({0.9, 0.5}), 10.0, 1e-9);  // Never saw -10.
}

TEST(TreeTest, EmptySubsetFails) {
  std::vector<std::vector<double>> rows = {{1.0}};
  std::vector<double> y = {1.0};
  RegressionTree tree;
  EXPECT_FALSE(tree.Fit(rows, y, {}).ok());
}

TEST(TreeTest, MismatchedInputFails) {
  std::vector<std::vector<double>> rows = {{1.0}, {2.0}};
  std::vector<double> y = {1.0};
  RegressionTree tree;
  EXPECT_FALSE(tree.Fit(rows, y).ok());
}

TEST(GbmTest, FitsNonlinearFunction) {
  Rng rng(7);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 1000; ++i) {
    const double x0 = rng.Uniform(-2.0, 2.0);
    const double x1 = rng.Uniform(-2.0, 2.0);
    rows.push_back({x0, x1});
    y.push_back(std::sin(x0) + 0.5 * x1 * x1);
  }
  GradientBoostedTrees::Options options;
  options.num_trees = 200;
  GradientBoostedTrees gbm(options);
  ASSERT_TRUE(gbm.Fit(rows, y).ok());
  double sse = 0.0;
  double sst = 0.0;
  double mean_y = 0.0;
  for (double v : y) mean_y += v;
  mean_y /= static_cast<double>(y.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const double pred = gbm.Predict(rows[i]);
    sse += (y[i] - pred) * (y[i] - pred);
    sst += (y[i] - mean_y) * (y[i] - mean_y);
  }
  EXPECT_LT(sse / sst, 0.05);  // R^2 > 0.95 in-sample.
}

TEST(GbmTest, BaseScoreIsTargetMean) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  MakeStepData(&rows, &y, 100, 8);
  GradientBoostedTrees gbm;
  ASSERT_TRUE(gbm.Fit(rows, y).ok());
  double mean_y = 0.0;
  for (double v : y) mean_y += v;
  mean_y /= static_cast<double>(y.size());
  EXPECT_NEAR(gbm.base_score(), mean_y, 1e-12);
}

TEST(GbmTest, SubsamplingStillLearns) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  MakeStepData(&rows, &y, 500, 9);
  GradientBoostedTrees::Options options;
  options.subsample = 0.5;
  options.num_trees = 50;
  GradientBoostedTrees gbm(options);
  ASSERT_TRUE(gbm.Fit(rows, y).ok());
  EXPECT_GT(gbm.Predict({0.2, 0.5}), 5.0);
  EXPECT_LT(gbm.Predict({0.8, 0.5}), -5.0);
}

TEST(GbmTest, InvalidOptionsFail) {
  std::vector<std::vector<double>> rows = {{1.0}, {2.0}, {3.0}};
  std::vector<double> y = {1.0, 2.0, 3.0};
  GradientBoostedTrees::Options options;
  options.num_trees = 0;
  EXPECT_FALSE(GradientBoostedTrees(options).Fit(rows, y).ok());
  options.num_trees = 10;
  options.subsample = 1.5;
  EXPECT_FALSE(GradientBoostedTrees(options).Fit(rows, y).ok());
}

TEST(GbmTest, EmptyInputFails) {
  GradientBoostedTrees gbm;
  EXPECT_FALSE(gbm.Fit({}, {}).ok());
}

}  // namespace
}  // namespace lossyts::analysis
