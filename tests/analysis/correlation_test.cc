#include "analysis/correlation.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace lossyts::analysis {
namespace {

TEST(RanksTest, SimpleRanks) {
  std::vector<double> ranks = AverageRanks({30.0, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(ranks[0], 3.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(RanksTest, TiesShareAverageRank) {
  std::vector<double> ranks = AverageRanks({1.0, 2.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(SpearmanTest, MonotonicNonlinearIsPerfect) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y = {1.0, 8.0, 27.0, 64.0, 125.0};  // x^3.
  Result<double> rho = SpearmanCorrelation(x, y);
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, 1.0, 1e-12);
}

TEST(SpearmanTest, ReversedIsMinusOne) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {9.0, 7.0, 5.0, 1.0};
  Result<double> rho = SpearmanCorrelation(x, y);
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, -1.0, 1e-12);
}

TEST(SpearmanTest, IndependentIsNearZero) {
  Rng rng(1);
  std::vector<double> x(5000);
  std::vector<double> y(5000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  Result<double> rho = SpearmanCorrelation(x, y);
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, 0.0, 0.05);
}

TEST(SpearmanTest, RobustToOutliersUnlikePearson) {
  // One extreme outlier wrecks Pearson but barely moves Spearman.
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  std::vector<double> y = {2.0, 3.0, 4.0, 5.0, 6.0, -1000.0};
  Result<double> rho = SpearmanCorrelation(x, y);
  ASSERT_TRUE(rho.ok());
  // Ranks: y's last point just drops to rank 1; correlation stays moderate.
  EXPECT_GT(*rho, -0.3);
}

TEST(SpearmanTest, TooShortFails) {
  EXPECT_FALSE(SpearmanCorrelation({1.0, 2.0}, {1.0, 2.0}).ok());
}

TEST(SpearmanTest, LengthMismatchFails) {
  EXPECT_FALSE(SpearmanCorrelation({1.0, 2.0, 3.0}, {1.0, 2.0}).ok());
}

// Regression (numcheck bug batch): NaN breaks the strict weak ordering of
// the rank sort, making rho indeterminate — Spearman must reject non-finite
// input in either vector, naming the offending index.
TEST(SpearmanTest, NonFiniteInputFails) {
  const std::vector<double> x = {1.0, std::nan(""), 3.0, 4.0};
  const std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  Result<double> rho = SpearmanCorrelation(x, y);
  ASSERT_FALSE(rho.ok());
  EXPECT_EQ(rho.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rho.status().ToString().find("index 1"), std::string::npos)
      << rho.status().ToString();
  EXPECT_FALSE(SpearmanCorrelation(y, x).ok());  // Also checked in y.
}

}  // namespace
}  // namespace lossyts::analysis
