#include "analysis/treeshap.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace lossyts::analysis {
namespace {

// Local accuracy: sum(phi) + E[f(x)] == f(x), where E[f] is the root's
// cover-weighted mean, i.e. the value of the empty coalition.
double RootMean(const RegressionTree& tree) {
  // The root's `value` is the mean of training targets by construction.
  return tree.nodes()[0].value;
}

TEST(TreeShapTest, SingleSplitSharesDifference) {
  // Balanced split on feature 0: phi_0 = f(x) - E[f], phi_1 = 0.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const double x0 = i < 50 ? 0.25 : 0.75;
    rows.push_back({x0, rng.Uniform()});
    y.push_back(x0 < 0.5 ? 4.0 : 8.0);
  }
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(rows, y).ok());

  Result<std::vector<double>> phi = TreeShapValues(tree, {0.25, 0.5}, 2);
  ASSERT_TRUE(phi.ok());
  EXPECT_NEAR((*phi)[0], 4.0 - 6.0, 1e-9);  // f(x)=4, E[f]=6.
  EXPECT_NEAR((*phi)[1], 0.0, 1e-12);       // Missingness.
}

TEST(TreeShapTest, LocalAccuracyOnRandomTrees) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::vector<double>> rows;
    std::vector<double> y;
    for (int i = 0; i < 300; ++i) {
      std::vector<double> row(4);
      for (auto& v : row) v = rng.Uniform(-1.0, 1.0);
      y.push_back(std::sin(3.0 * row[0]) + row[1] * row[2] +
                  0.1 * rng.Normal());
      rows.push_back(std::move(row));
    }
    RegressionTree::Options options;
    options.max_depth = 4;
    RegressionTree tree(options);
    ASSERT_TRUE(tree.Fit(rows, y).ok());

    for (int q = 0; q < 20; ++q) {
      std::vector<double> row(4);
      for (auto& v : row) v = rng.Uniform(-1.0, 1.0);
      Result<std::vector<double>> phi = TreeShapValues(tree, row, 4);
      ASSERT_TRUE(phi.ok());
      const double sum = std::accumulate(phi->begin(), phi->end(), 0.0);
      EXPECT_NEAR(sum + RootMean(tree), tree.Predict(row), 1e-9)
          << "trial " << trial;
    }
  }
}

TEST(TreeShapTest, SymmetryOfIdenticalFeatures) {
  // Two features that are exact duplicates must share credit equally for a
  // symmetric function (Shapley symmetry axiom).
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.Uniform();
    const double b = rng.Uniform();
    rows.push_back({a, b});
    y.push_back((a > 0.5 ? 1.0 : 0.0) + (b > 0.5 ? 1.0 : 0.0));
  }
  RegressionTree::Options options;
  options.max_depth = 2;
  RegressionTree tree(options);
  ASSERT_TRUE(tree.Fit(rows, y).ok());
  Result<std::vector<double>> phi = TreeShapValues(tree, {0.9, 0.9}, 2);
  ASSERT_TRUE(phi.ok());
  // Both features push the prediction the same way.
  EXPECT_GT((*phi)[0], 0.0);
  EXPECT_GT((*phi)[1], 0.0);
}

TEST(TreeShapTest, SingleLeafTreeGivesZeros) {
  std::vector<std::vector<double>> rows = {{1.0}, {2.0}, {3.0}};
  std::vector<double> y = {5.0, 5.0, 5.0};
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(rows, y).ok());
  Result<std::vector<double>> phi = TreeShapValues(tree, {1.5}, 1);
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ((*phi)[0], 0.0);
}

TEST(TreeShapTest, UnfittedTreeFails) {
  RegressionTree tree;
  EXPECT_FALSE(TreeShapValues(tree, {1.0}, 1).ok());
}

TEST(GbmShapTest, LocalAccuracyForEnsemble) {
  Rng rng(4);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> row(3);
    for (auto& v : row) v = rng.Uniform(-1.0, 1.0);
    y.push_back(2.0 * row[0] - row[1] + 0.5 * row[2] * row[0]);
    rows.push_back(std::move(row));
  }
  GradientBoostedTrees::Options options;
  options.num_trees = 50;
  GradientBoostedTrees gbm(options);
  ASSERT_TRUE(gbm.Fit(rows, y).ok());

  for (int q = 0; q < 10; ++q) {
    std::vector<double> row(3);
    for (auto& v : row) v = rng.Uniform(-1.0, 1.0);
    Result<std::vector<double>> phi = GbmShapValues(gbm, row, 3);
    ASSERT_TRUE(phi.ok());
    const double sum = std::accumulate(phi->begin(), phi->end(), 0.0);
    EXPECT_NEAR(sum + gbm.base_score(), gbm.Predict(row), 1e-9);
  }
}

TEST(GbmShapTest, ImportanceRanksInformativeFeatureFirst) {
  // Feature 0 drives the target; features 1-2 are noise.
  Rng rng(5);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 600; ++i) {
    std::vector<double> row = {rng.Uniform(-1.0, 1.0), rng.Uniform(),
                               rng.Uniform()};
    y.push_back(5.0 * row[0] + 0.05 * rng.Normal());
    rows.push_back(std::move(row));
  }
  GradientBoostedTrees gbm;
  ASSERT_TRUE(gbm.Fit(rows, y).ok());
  Result<std::vector<double>> importance = MeanAbsoluteShap(gbm, rows, 3);
  ASSERT_TRUE(importance.ok());
  EXPECT_GT((*importance)[0], 10.0 * (*importance)[1]);
  EXPECT_GT((*importance)[0], 10.0 * (*importance)[2]);
}

TEST(GbmShapTest, EmptyRowsFail) {
  GradientBoostedTrees gbm;
  std::vector<std::vector<double>> rows = {{1.0}, {2.0}, {3.0}};
  std::vector<double> y = {1.0, 2.0, 3.0};
  ASSERT_TRUE(gbm.Fit(rows, y).ok());
  EXPECT_FALSE(MeanAbsoluteShap(gbm, {}, 1).ok());
}

}  // namespace
}  // namespace lossyts::analysis
