#include "analysis/change_detection.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace lossyts::analysis {
namespace {

std::vector<double> StepSeries(const std::vector<size_t>& change_points,
                               double step, double noise, size_t n,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  double level = 10.0;
  size_t next = 0;
  for (size_t i = 0; i < n; ++i) {
    if (next < change_points.size() && i == change_points[next]) {
      level += (next % 2 == 0 ? step : -step);
      ++next;
    }
    v[i] = level + noise * rng.Normal();
  }
  return v;
}

TEST(CusumTest, DetectsSingleLevelShift) {
  std::vector<double> v = StepSeries({500}, 5.0, 0.5, 1000, 1);
  Result<std::vector<size_t>> changes = DetectChanges(v);
  ASSERT_TRUE(changes.ok());
  ASSERT_GE(changes->size(), 1u);
  EXPECT_NEAR(static_cast<double>((*changes)[0]), 500.0, 20.0);
}

TEST(CusumTest, DetectsMultipleShifts) {
  std::vector<double> v = StepSeries({300, 600, 900}, 6.0, 0.5, 1200, 2);
  Result<std::vector<size_t>> changes = DetectChanges(v);
  ASSERT_TRUE(changes.ok());
  const DetectionQuality q = ScoreDetections(*changes, {300, 600, 900}, 25);
  EXPECT_EQ(q.false_negatives, 0u);
  EXPECT_GE(q.precision, 0.6);
}

TEST(CusumTest, QuietSeriesRaisesNoAlarms) {
  Rng rng(3);
  std::vector<double> v(2000);
  for (auto& x : v) x = 10.0 + 0.5 * rng.Normal();
  Result<std::vector<size_t>> changes = DetectChanges(v);
  ASSERT_TRUE(changes.ok());
  EXPECT_LE(changes->size(), 1u);  // At most spurious noise.
}

TEST(CusumTest, ShortSeriesFails) {
  std::vector<double> v(10, 1.0);
  EXPECT_FALSE(DetectChanges(v).ok());
}

TEST(CusumTest, MinSpacingSuppressesDuplicateAlarms) {
  std::vector<double> v = StepSeries({500}, 8.0, 0.3, 1000, 4);
  CusumOptions options;
  options.min_spacing = 200;
  Result<std::vector<size_t>> changes = DetectChanges(v, options);
  ASSERT_TRUE(changes.ok());
  for (size_t i = 1; i < changes->size(); ++i) {
    EXPECT_GE((*changes)[i] - (*changes)[i - 1], 200u);
  }
}

TEST(ScoreTest, PerfectDetection) {
  const DetectionQuality q = ScoreDetections({100, 200}, {101, 199}, 5);
  EXPECT_EQ(q.true_positives, 2u);
  EXPECT_EQ(q.false_positives, 0u);
  EXPECT_EQ(q.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
}

TEST(ScoreTest, FalsePositivesAndNegatives) {
  const DetectionQuality q = ScoreDetections({100, 400}, {100, 200, 300}, 5);
  EXPECT_EQ(q.true_positives, 1u);
  EXPECT_EQ(q.false_positives, 1u);
  EXPECT_EQ(q.false_negatives, 2u);
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_NEAR(q.recall, 1.0 / 3.0, 1e-12);
}

TEST(ScoreTest, EachTruthMatchedOnce) {
  // Two detections near one truth: only one counts as a true positive.
  const DetectionQuality q = ScoreDetections({100, 102}, {101}, 5);
  EXPECT_EQ(q.true_positives, 1u);
  EXPECT_EQ(q.false_positives, 1u);
}

TEST(ScoreTest, EmptyInputs) {
  const DetectionQuality q = ScoreDetections({}, {}, 5);
  EXPECT_EQ(q.f1, 0.0);
  const DetectionQuality q2 = ScoreDetections({}, {100}, 5);
  EXPECT_EQ(q2.false_negatives, 1u);
  EXPECT_EQ(q2.recall, 0.0);
}

}  // namespace
}  // namespace lossyts::analysis
