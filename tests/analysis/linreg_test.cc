#include "analysis/linreg.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace lossyts::analysis {
namespace {

TEST(LinregTest, PerfectLineRecovered) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y = {5.0, 7.0, 9.0, 11.0, 13.0};  // y = 3 + 2x.
  Result<OlsResult> r = FitSimpleRegression(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->coefficients[0], 3.0, 1e-9);
  EXPECT_NEAR(r->coefficients[1], 2.0, 1e-9);
  EXPECT_NEAR(r->r_squared, 1.0, 1e-12);
  EXPECT_NEAR(r->standard_errors[1], 0.0, 1e-9);
}

TEST(LinregTest, NoisyLineHasPositiveStandardErrors) {
  Rng rng(1);
  std::vector<double> x(200);
  std::vector<double> y(200);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i) / 10.0;
    y[i] = 1.0 + 0.5 * x[i] + rng.Normal(0.0, 0.2);
  }
  Result<OlsResult> r = FitSimpleRegression(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->coefficients[1], 0.5, 0.02);
  EXPECT_GT(r->standard_errors[1], 0.0);
  EXPECT_LT(r->standard_errors[1], 0.05);
  EXPECT_GT(r->r_squared, 0.95);
}

TEST(LinregTest, StandardErrorMatchesTextbookFormula) {
  // For simple regression: SE(b1) = sqrt(sigma^2 / sum (x - xbar)^2).
  Rng rng(2);
  std::vector<double> x(100);
  std::vector<double> y(100);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i);
    y[i] = 2.0 * x[i] + rng.Normal(0.0, 1.0);
  }
  Result<OlsResult> r = FitSimpleRegression(x, y);
  ASSERT_TRUE(r.ok());
  double xbar = 0.0;
  for (double v : x) xbar += v;
  xbar /= static_cast<double>(x.size());
  double sxx = 0.0;
  for (double v : x) sxx += (v - xbar) * (v - xbar);
  EXPECT_NEAR(r->standard_errors[1],
              std::sqrt(r->residual_variance / sxx), 1e-9);
}

TEST(LinregTest, MultipleRegression) {
  Rng rng(3);
  std::vector<double> x1(300);
  std::vector<double> x2(300);
  std::vector<double> y(300);
  for (size_t i = 0; i < y.size(); ++i) {
    x1[i] = rng.Normal();
    x2[i] = rng.Normal();
    y[i] = 1.0 + 2.0 * x1[i] - 3.0 * x2[i] + rng.Normal(0.0, 0.1);
  }
  Result<OlsResult> r = FitOls({x1, x2}, y);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->coefficients[0], 1.0, 0.05);
  EXPECT_NEAR(r->coefficients[1], 2.0, 0.05);
  EXPECT_NEAR(r->coefficients[2], -3.0, 0.05);
}

TEST(LinregTest, SingularDesignFails) {
  std::vector<double> x = {1.0, 1.0, 1.0, 1.0, 1.0};  // Collinear with 1.
  std::vector<double> y = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_FALSE(FitSimpleRegression(x, y).ok());
}

TEST(LinregTest, TooFewObservationsFails) {
  EXPECT_FALSE(FitSimpleRegression({1.0, 2.0}, {1.0, 2.0}).ok());
}

TEST(LinregTest, LengthMismatchFails) {
  EXPECT_FALSE(FitSimpleRegression({1.0, 2.0, 3.0}, {1.0, 2.0}).ok());
}

// Regression (numcheck bug batch): NaN comparisons are all false, so a NaN
// cell sailed through the pivot checks into quietly-NaN coefficients. The
// fit must reject non-finite inputs with the offending coordinate instead.
TEST(LinregTest, NonFiniteInputFails) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = {1.1, 1.9, 3.2, 3.8, 5.1};

  std::vector<double> bad_y = y;
  bad_y[3] = std::nan("");
  Result<OlsResult> r = FitSimpleRegression(x, bad_y);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find("index 3"), std::string::npos)
      << r.status().ToString();

  std::vector<double> bad_x = x;
  bad_x[1] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(FitSimpleRegression(bad_x, y).ok());
}

}  // namespace
}  // namespace lossyts::analysis
