#include "analysis/kneedle.h"

#include <cmath>

#include <gtest/gtest.h>

namespace lossyts::analysis {
namespace {

TEST(KneedleTest, ConvexElbowOnPiecewiseLinearCurve) {
  // Flat until x = 10, then steep: the elbow is at x = 10.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i <= 20; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(i <= 10 ? 0.1 * i : 1.0 + 5.0 * (i - 10));
  }
  KneedleOptions options;
  options.curve = KneedleCurve::kConvexIncreasing;
  Result<KneePoint> knee = FindKnee(x, y, options);
  ASSERT_TRUE(knee.ok()) << knee.status().ToString();
  EXPECT_NEAR(knee->x, 10.0, 1.0);
}

TEST(KneedleTest, ConcaveKneeOnSaturatingCurve) {
  // y = 1 - exp(-x/2): classic diminishing-returns knee near x ~ 2.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i <= 40; ++i) {
    x.push_back(static_cast<double>(i) * 0.25);
    y.push_back(1.0 - std::exp(-x.back() / 2.0));
  }
  KneedleOptions options;
  options.curve = KneedleCurve::kConcaveIncreasing;
  Result<KneePoint> knee = FindKnee(x, y, options);
  ASSERT_TRUE(knee.ok());
  EXPECT_GT(knee->x, 0.5);
  EXPECT_LT(knee->x, 4.0);
}

TEST(KneedleTest, ExponentialTfeCurveElbow) {
  // The shape of Figure 4: slow growth then super-linear takeoff.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 13; ++i) {
    const double te = 0.005 * i;
    x.push_back(te);
    y.push_back(0.01 * std::expm1(60.0 * te));
  }
  KneedleOptions options;
  options.curve = KneedleCurve::kConvexIncreasing;
  Result<KneePoint> knee = FindKnee(x, y, options);
  ASSERT_TRUE(knee.ok());
  EXPECT_GT(knee->index, 2u);
  EXPECT_LT(knee->index, 12u);
}

TEST(KneedleTest, SmoothingToleratesNoise) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i <= 30; ++i) {
    x.push_back(static_cast<double>(i));
    const double base = i <= 15 ? 0.05 * i : 0.75 + 2.0 * (i - 15);
    // Deterministic small ripple.
    y.push_back(base + 0.05 * std::sin(static_cast<double>(i) * 1.7));
  }
  KneedleOptions options;
  options.curve = KneedleCurve::kConvexIncreasing;
  options.smoothing = 3;
  Result<KneePoint> knee = FindKnee(x, y, options);
  ASSERT_TRUE(knee.ok());
  EXPECT_NEAR(knee->x, 15.0, 3.0);
}

TEST(KneedleTest, RejectsShortInput) {
  EXPECT_FALSE(FindKnee({1.0, 2.0}, {1.0, 2.0}).ok());
}

TEST(KneedleTest, RejectsNonIncreasingX) {
  std::vector<double> x = {1.0, 2.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_FALSE(FindKnee(x, y).ok());
}

TEST(KneedleTest, RejectsLengthMismatch) {
  EXPECT_FALSE(FindKnee({1.0, 2.0, 3.0, 4.0, 5.0}, {1.0, 2.0}).ok());
}

TEST(KneedleTest, DegenerateFlatCurveFails) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y = {2.0, 2.0, 2.0, 2.0, 2.0};
  EXPECT_FALSE(FindKnee(x, y).ok());
}

// Regression: the local-max scan used to *discard* a standing candidate when
// the confirmation drop below the Satopää threshold never arrived before the
// curve ended (a plateaued tail), handing the decision to the global-max
// fallback. Here the whole difference curve is non-positive (the curve hugs
// the diagonal from below), so the fallback's `diff > 0` test fails and the
// old code returned NotFound even though the scan had found the knee.
TEST(KneedleTest, PlateauedTailKeepsStandingCandidate) {
  std::vector<double> x = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  // Normalized y equals y/10: diff = yn - xn is
  // {0, -0.117, -0.033, -0.1, -0.167, -0.153, 0} — a local max at index 2
  // with threshold -0.2 (sensitivity 1) that the tail never crosses.
  std::vector<double> y = {0.0, 0.5, 3.0, 4.0, 5.0, 6.8, 10.0};
  KneedleOptions options;
  options.curve = KneedleCurve::kConcaveIncreasing;
  Result<KneePoint> knee = FindKnee(x, y, options);
  ASSERT_TRUE(knee.ok()) << knee.status().ToString();
  EXPECT_EQ(knee->index, 2u);
  EXPECT_DOUBLE_EQ(knee->x, 2.0);
}

}  // namespace
}  // namespace lossyts::analysis
