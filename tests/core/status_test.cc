#include "core/status.h"

#include <gtest/gtest.h>

namespace lossyts {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactoryIsOk) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad epsilon");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad epsilon");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad epsilon");
}

TEST(StatusTest, EachFactoryProducesItsCode) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace lossyts
