#include "core/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace lossyts {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(10), 10u);
  }
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(123);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalScalesMeanAndStddev) {
  Rng rng(123);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.Fork();
  // The child's stream should not replay the parent's subsequent values.
  EXPECT_NE(child.NextU64(), parent.NextU64());
}

}  // namespace
}  // namespace lossyts
