#include "core/split.h"

#include <numeric>

#include <gtest/gtest.h>

namespace lossyts {
namespace {

TimeSeries MakeSeries(size_t n) {
  std::vector<double> v(n);
  std::iota(v.begin(), v.end(), 0.0);
  return TimeSeries(0, 60, std::move(v));
}

TEST(SplitTest, DefaultFractions70_10_20) {
  TimeSeries ts = MakeSeries(100);
  Result<TrainValTest> split = SplitSeries(ts);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size(), 70u);
  EXPECT_EQ(split->val.size(), 10u);
  EXPECT_EQ(split->test.size(), 20u);
}

TEST(SplitTest, ChronologicalOrderPreserved) {
  TimeSeries ts = MakeSeries(100);
  Result<TrainValTest> split = SplitSeries(ts);
  ASSERT_TRUE(split.ok());
  EXPECT_DOUBLE_EQ(split->train[0], 0.0);
  EXPECT_DOUBLE_EQ(split->train[69], 69.0);
  EXPECT_DOUBLE_EQ(split->val[0], 70.0);
  EXPECT_DOUBLE_EQ(split->test[0], 80.0);
  EXPECT_DOUBLE_EQ(split->test[19], 99.0);
}

TEST(SplitTest, TimestampsContinueAcrossParts) {
  TimeSeries ts = MakeSeries(100);
  Result<TrainValTest> split = SplitSeries(ts);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->val.start_timestamp(), ts.TimestampAt(70));
  EXPECT_EQ(split->test.start_timestamp(), ts.TimestampAt(80));
}

TEST(SplitTest, CustomFractions) {
  TimeSeries ts = MakeSeries(100);
  SplitOptions opt;
  opt.train_fraction = 0.5;
  opt.val_fraction = 0.25;
  Result<TrainValTest> split = SplitSeries(ts, opt);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size(), 50u);
  EXPECT_EQ(split->val.size(), 25u);
  EXPECT_EQ(split->test.size(), 25u);
}

TEST(SplitTest, InvalidFractionsFail) {
  TimeSeries ts = MakeSeries(100);
  SplitOptions opt;
  opt.train_fraction = 0.9;
  opt.val_fraction = 0.2;
  EXPECT_FALSE(SplitSeries(ts, opt).ok());
  opt.train_fraction = 0.0;
  opt.val_fraction = 0.1;
  EXPECT_FALSE(SplitSeries(ts, opt).ok());
}

TEST(SplitTest, TooShortSeriesFails) {
  TimeSeries ts = MakeSeries(1);
  EXPECT_FALSE(SplitSeries(ts).ok());
}

TEST(SplitTest, PartsCoverWholeSeries) {
  for (size_t n : {10u, 37u, 101u, 1000u}) {
    TimeSeries ts = MakeSeries(n);
    Result<TrainValTest> split = SplitSeries(ts);
    ASSERT_TRUE(split.ok()) << "n=" << n;
    EXPECT_EQ(split->train.size() + split->val.size() + split->test.size(), n);
  }
}

}  // namespace
}  // namespace lossyts
