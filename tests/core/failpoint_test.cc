#include "core/failpoint.h"

#include <gtest/gtest.h>

namespace lossyts {
namespace {

class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::DisarmAll(); }
};

Status HitSite(const char* site) { LOSSYTS_FAILPOINT(site); return Status::OK(); }

Result<int> HitSiteResult(const char* site) {
  LOSSYTS_FAILPOINT(site);
  return 42;
}

TEST_F(FailPointTest, UnarmedSiteNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(FailPoints::Hit("nowhere").ok());
  }
  EXPECT_EQ(FailPoints::HitCount("nowhere"), 0u);
}

TEST_F(FailPointTest, FiresOnExactlyTheKthHit) {
  FailPoints::Arm("site", 3);
  EXPECT_TRUE(FailPoints::Hit("site").ok());
  EXPECT_TRUE(FailPoints::Hit("site").ok());
  Status fired = FailPoints::Hit("site");
  EXPECT_EQ(fired.code(), StatusCode::kInternal);
  EXPECT_NE(fired.message().find("site"), std::string::npos);
  // The window has passed; later hits succeed again.
  EXPECT_TRUE(FailPoints::Hit("site").ok());
  EXPECT_EQ(FailPoints::HitCount("site"), 4u);
}

TEST_F(FailPointTest, TimesWidensTheFiringWindow) {
  FailPoints::Arm("site", 2, 3);
  EXPECT_TRUE(FailPoints::Hit("site").ok());
  EXPECT_FALSE(FailPoints::Hit("site").ok());
  EXPECT_FALSE(FailPoints::Hit("site").ok());
  EXPECT_FALSE(FailPoints::Hit("site").ok());
  EXPECT_TRUE(FailPoints::Hit("site").ok());
}

TEST_F(FailPointTest, RearmingResetsTheHitCounter) {
  FailPoints::Arm("site", 2);
  EXPECT_TRUE(FailPoints::Hit("site").ok());
  FailPoints::Arm("site", 2);
  EXPECT_TRUE(FailPoints::Hit("site").ok());
  EXPECT_FALSE(FailPoints::Hit("site").ok());
}

TEST_F(FailPointTest, DisarmStopsFiring) {
  FailPoints::Arm("site", 1, 1000);
  EXPECT_FALSE(FailPoints::Hit("site").ok());
  FailPoints::Disarm("site");
  EXPECT_TRUE(FailPoints::Hit("site").ok());
}

TEST_F(FailPointTest, MacroPropagatesFromStatusAndResultFunctions) {
  FailPoints::Arm("macro_site", 1, 2);
  EXPECT_EQ(HitSite("macro_site").code(), StatusCode::kInternal);
  Result<int> r = HitSiteResult("macro_site");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  Result<int> ok = HitSiteResult("macro_site");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
}

TEST_F(FailPointTest, ArmFromSpecParsesEntries) {
  FailPoints::ArmFromSpec("compress@2,train_step@1x3;bad,also@bad,@3,x@0");
  EXPECT_TRUE(FailPoints::Hit("compress").ok());
  EXPECT_FALSE(FailPoints::Hit("compress").ok());
  EXPECT_FALSE(FailPoints::Hit("train_step").ok());
  EXPECT_FALSE(FailPoints::Hit("train_step").ok());
  EXPECT_FALSE(FailPoints::Hit("train_step").ok());
  EXPECT_TRUE(FailPoints::Hit("train_step").ok());
  // Malformed entries are ignored, not armed.
  EXPECT_TRUE(FailPoints::Hit("bad").ok());
  EXPECT_TRUE(FailPoints::Hit("also").ok());
  EXPECT_TRUE(FailPoints::Hit("x").ok());
}

}  // namespace
}  // namespace lossyts
