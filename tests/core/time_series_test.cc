#include "core/time_series.h"

#include <gtest/gtest.h>

namespace lossyts {
namespace {

TimeSeries MakeSeries() {
  return TimeSeries(1000, 60, {1.0, 2.0, 3.0, 4.0, 5.0});
}

TEST(TimeSeriesTest, BasicAccessors) {
  TimeSeries ts = MakeSeries();
  EXPECT_EQ(ts.size(), 5u);
  EXPECT_FALSE(ts.empty());
  EXPECT_EQ(ts.start_timestamp(), 1000);
  EXPECT_EQ(ts.interval_seconds(), 60);
  EXPECT_DOUBLE_EQ(ts[2], 3.0);
}

TEST(TimeSeriesTest, TimestampsAreRegular) {
  TimeSeries ts = MakeSeries();
  EXPECT_EQ(ts.TimestampAt(0), 1000);
  EXPECT_EQ(ts.TimestampAt(1), 1060);
  EXPECT_EQ(ts.TimestampAt(4), 1240);
}

TEST(TimeSeriesTest, AppendExtendsSeries) {
  TimeSeries ts = MakeSeries();
  ts.Append(6.0);
  EXPECT_EQ(ts.size(), 6u);
  EXPECT_DOUBLE_EQ(ts[5], 6.0);
  EXPECT_EQ(ts.TimestampAt(5), 1300);
}

TEST(TimeSeriesTest, SliceKeepsTimestampAlignment) {
  TimeSeries ts = MakeSeries();
  Result<TimeSeries> slice = ts.Slice(1, 4);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->size(), 3u);
  EXPECT_EQ(slice->start_timestamp(), 1060);
  EXPECT_DOUBLE_EQ((*slice)[0], 2.0);
  EXPECT_DOUBLE_EQ((*slice)[2], 4.0);
}

TEST(TimeSeriesTest, SliceEmptyRangeIsAllowed) {
  TimeSeries ts = MakeSeries();
  Result<TimeSeries> slice = ts.Slice(2, 2);
  ASSERT_TRUE(slice.ok());
  EXPECT_TRUE(slice->empty());
}

TEST(TimeSeriesTest, SliceOutOfBoundsFails) {
  TimeSeries ts = MakeSeries();
  EXPECT_FALSE(ts.Slice(0, 6).ok());
  EXPECT_FALSE(ts.Slice(3, 2).ok());
  EXPECT_EQ(ts.Slice(0, 6).status().code(), StatusCode::kOutOfRange);
}

TEST(TimeSeriesTest, StatsOnKnownValues) {
  TimeSeries ts = MakeSeries();
  Result<TimeSeries::Stats> stats = ts.ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->length, 5u);
  EXPECT_DOUBLE_EQ(stats->mean, 3.0);
  EXPECT_DOUBLE_EQ(stats->min, 1.0);
  EXPECT_DOUBLE_EQ(stats->max, 5.0);
  EXPECT_DOUBLE_EQ(stats->median, 3.0);
  EXPECT_DOUBLE_EQ(stats->q1, 2.0);
  EXPECT_DOUBLE_EQ(stats->q3, 4.0);
  EXPECT_DOUBLE_EQ(stats->variance, 2.0);
  // rIQD = (4-2)/3 * 100.
  EXPECT_NEAR(stats->riqd_percent, 66.6667, 1e-3);
}

TEST(TimeSeriesTest, StatsOnEmptySeriesFails) {
  TimeSeries ts;
  EXPECT_FALSE(ts.ComputeStats().ok());
}

TEST(TimeSeriesTest, StatsHandleNegativeMeanInRiqd) {
  TimeSeries ts(0, 1, {-1.0, -2.0, -3.0, -4.0, -5.0});
  Result<TimeSeries::Stats> stats = ts.ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->riqd_percent, 0.0);
}

TEST(QuantileTest, InterpolatesType7) {
  std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.25), 1.75);
}

TEST(QuantileTest, SingleElement) {
  std::vector<double> sorted = {7.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.5), 7.0);
}

}  // namespace
}  // namespace lossyts
