// Contract tests for the pluggable metric registry (core/metric_registry):
// name parsing and canonicalization, the pinned-four resolution rules, the
// metric edge contracts (denominator floors, MASE preconditions, non-finite
// rejection), and runtime registration of new metric families.

#include "core/metric_registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace lossyts {
namespace {

MetricContext MakeContext(const std::vector<double>& actual,
                          const std::vector<double>& predicted) {
  MetricContext ctx;
  ctx.actual = &actual;
  ctx.predicted = &predicted;
  return ctx;
}

// --- Parsing and canonical names ------------------------------------------

TEST(MetricParseTest, CanonicalizesParameterSpelling) {
  Result<MetricSpec> spec = MetricRegistry::Global().Parse("pinball@0.90");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "pinball@0.9");
  EXPECT_EQ(spec->base, "pinball");
  ASSERT_EQ(spec->params.size(), 1u);
  EXPECT_DOUBLE_EQ(spec->params[0], 0.9);
}

TEST(MetricParseTest, BareNameGetsDefaultParams) {
  Result<MetricSpec> pinball = MetricRegistry::Global().Parse("pinball");
  ASSERT_TRUE(pinball.ok());
  ASSERT_EQ(pinball->params.size(), 1u);
  EXPECT_DOUBLE_EQ(pinball->params[0], 0.5);
  Result<MetricSpec> crps = MetricRegistry::Global().Parse("crps");
  ASSERT_TRUE(crps.ok());
  EXPECT_EQ(crps->params.size(), 19u);  // The dense 0.05..0.95 grid.
}

TEST(MetricParseTest, RejectsBadNamesAndParameters) {
  // Unknown base.
  EXPECT_FALSE(MetricRegistry::Global().Parse("made_up").ok());
  // Parameters outside (0, 1).
  EXPECT_FALSE(MetricRegistry::Global().Parse("pinball@1.5").ok());
  EXPECT_FALSE(MetricRegistry::Global().Parse("pinball@0").ok());
  // Arity violations: pinball takes exactly one, mae takes none.
  EXPECT_FALSE(MetricRegistry::Global().Parse("pinball@0.1+0.2").ok());
  EXPECT_FALSE(MetricRegistry::Global().Parse("mae@0.5").ok());
  // Garbage parameter text.
  EXPECT_FALSE(MetricRegistry::Global().Parse("pinball@abc").ok());
  EXPECT_FALSE(MetricRegistry::Global().Parse("pinball@").ok());
}

TEST(MetricParseTest, ResolveKeepsPinnedFirstAndDeduplicates) {
  Result<std::vector<std::string>> resolved =
      ResolveMetricNames({"mae", "nrmse", "pinball@0.50", "mae"});
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  const std::vector<std::string> want = {"r",   "rse", "rmse",
                                         "nrmse", "mae", "pinball@0.5"};
  EXPECT_EQ(*resolved, want);
  // The pinned indices are an API constant other layers rely on.
  EXPECT_EQ((*resolved)[kMetricR], "r");
  EXPECT_EQ((*resolved)[kMetricRse], "rse");
  EXPECT_EQ((*resolved)[kMetricRmse], "rmse");
  EXPECT_EQ((*resolved)[kMetricNrmse], "nrmse");
}

TEST(MetricParseTest, CanonicalListRejectsEmptyAndKeepsOrder) {
  EXPECT_FALSE(CanonicalMetricNames({}).ok());
  Result<std::vector<std::string>> names =
      CanonicalMetricNames({"smape", "mae", "smape"});
  ASSERT_TRUE(names.ok());
  const std::vector<std::string> want = {"smape", "mae"};
  EXPECT_EQ(*names, want);
}

// --- Edge contracts -------------------------------------------------------

TEST(MetricContractTest, MapeAndSmapeStayFiniteOnZeroDenominators) {
  const std::vector<double> actual = {0.0, 0.0, 0.0};
  const std::vector<double> predicted = {0.0, 0.0, 0.0};
  Result<std::vector<double>> m =
      EvaluateMetrics({"mape", "smape"}, MakeContext(actual, predicted));
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  // Zero error over a floored denominator is exactly zero, not NaN.
  EXPECT_DOUBLE_EQ((*m)[0], 0.0);
  EXPECT_DOUBLE_EQ((*m)[1], 0.0);

  const std::vector<double> off = {1.0, 1.0, 1.0};
  Result<std::vector<double>> floored =
      EvaluateMetrics({"mape"}, MakeContext(actual, off));
  ASSERT_TRUE(floored.ok());
  EXPECT_TRUE(std::isfinite((*floored)[0]));
}

TEST(MetricContractTest, MaseRejectsConstantAndShortInsampleByName) {
  const std::vector<double> actual = {1.0, 2.0, 3.0};
  const std::vector<double> predicted = {1.1, 1.9, 3.2};
  MetricContext ctx = MakeContext(actual, predicted);
  ctx.series = "ETTm1";

  const std::vector<double> constant(16, 7.5);
  ctx.insample = &constant;
  Result<std::vector<double>> flat = EvaluateMetrics({"mase"}, ctx);
  ASSERT_FALSE(flat.ok());
  EXPECT_EQ(flat.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(flat.status().ToString().find("constant in-sample"),
            std::string::npos);
  EXPECT_NE(flat.status().ToString().find("ETTm1"), std::string::npos);

  const std::vector<double> tiny = {1.0, 2.0};
  ctx.season_length = 4;
  ctx.insample = &tiny;
  Result<std::vector<double>> short_series = EvaluateMetrics({"mase"}, ctx);
  ASSERT_FALSE(short_series.ok());
  EXPECT_NE(short_series.status().ToString().find("need more than"),
            std::string::npos);

  ctx.insample = nullptr;
  Result<std::vector<double>> missing = EvaluateMetrics({"mase"}, ctx);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("in-sample"), std::string::npos);
}

TEST(MetricContractTest, NonFiniteInputsAreRejectedWithTheIndex) {
  std::vector<double> actual = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> predicted = {1.0, 2.0, 3.0, 4.0};
  predicted[2] = std::numeric_limits<double>::quiet_NaN();
  Result<std::vector<double>> nan_case =
      EvaluateMetrics({"mae"}, MakeContext(actual, predicted));
  ASSERT_FALSE(nan_case.ok());
  EXPECT_EQ(nan_case.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(nan_case.status().ToString().find("non-finite value at index 2"),
            std::string::npos);

  actual[1] = std::numeric_limits<double>::infinity();
  predicted[2] = 3.0;
  Result<std::vector<double>> inf_case =
      EvaluateMetrics({"mae"}, MakeContext(actual, predicted));
  ASSERT_FALSE(inf_case.ok());
  EXPECT_NE(inf_case.status().ToString().find("non-finite value at index 1"),
            std::string::npos);
}

TEST(MetricContractTest, CoverageNeedsIntervalsAndCountsInside) {
  const std::vector<double> actual = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> predicted = {1.0, 2.0, 3.0, 4.0};
  MetricContext ctx = MakeContext(actual, predicted);
  EXPECT_FALSE(EvaluateMetrics({"coverage"}, ctx).ok());

  const std::vector<double> lower = {0.5, 1.5, 3.5, 3.5};
  const std::vector<double> upper = {1.5, 2.5, 3.8, 4.5};
  ctx.lower = &lower;
  ctx.upper = &upper;
  Result<std::vector<double>> covered = EvaluateMetrics({"coverage"}, ctx);
  ASSERT_TRUE(covered.ok()) << covered.status().ToString();
  EXPECT_DOUBLE_EQ((*covered)[0], 0.75);  // Index 2 falls outside.
}

// --- Runtime registration -------------------------------------------------

TEST(MetricRegistryTest, RegisteredMetricsWorkEverywhereAndDupsAreRefused) {
  MetricKernel kernel;
  kernel.fn = [](const MetricContext& ctx,
                 const std::vector<double>&) -> Result<double> {
    return static_cast<double>(ctx.actual->size());
  };
  ASSERT_TRUE(
      MetricRegistry::Global().Register("test_count", kernel).ok());
  // Second registration under the same name must be refused, not replaced.
  Status dup = MetricRegistry::Global().Register("test_count", kernel);
  EXPECT_EQ(dup.code(), StatusCode::kFailedPrecondition);
  // '@' and empty names are structurally invalid.
  EXPECT_EQ(MetricRegistry::Global().Register("bad@name", kernel).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MetricRegistry::Global().Register("", kernel).code(),
            StatusCode::kInvalidArgument);

  const std::vector<double> actual = {1.0, 2.0, 3.0};
  const std::vector<double> predicted = {1.0, 2.0, 3.0};
  Result<std::vector<double>> via_eval =
      EvaluateMetrics({"test_count"}, MakeContext(actual, predicted));
  ASSERT_TRUE(via_eval.ok()) << via_eval.status().ToString();
  EXPECT_DOUBLE_EQ((*via_eval)[0], 3.0);
  // And the grid resolver accepts it like any built-in.
  Result<std::vector<std::string>> resolved =
      ResolveMetricNames({"test_count"});
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->back(), "test_count");
}

}  // namespace
}  // namespace lossyts
