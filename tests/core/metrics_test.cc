#include "core/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/metric_registry.h"

namespace lossyts {
namespace {

TEST(MetricsTest, RmseIdenticalIsZero) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  Result<double> r = Rmse(x, x);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 0.0);
}

TEST(MetricsTest, RmseKnownValue) {
  std::vector<double> x = {0.0, 0.0, 0.0, 0.0};
  std::vector<double> y = {1.0, 1.0, 1.0, 1.0};
  Result<double> r = Rmse(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 1.0);
}

TEST(MetricsTest, RmseMixedErrors) {
  std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {2.0, 4.0};
  // Errors 1 and 2 -> sqrt((1+4)/2).
  Result<double> r = Rmse(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, std::sqrt(2.5));
}

TEST(MetricsTest, NrmseNormalizesByRange) {
  std::vector<double> x = {0.0, 10.0};
  std::vector<double> y = {1.0, 11.0};
  Result<double> r = Nrmse(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 0.1);
}

TEST(MetricsTest, NrmseConstantReferenceFails) {
  std::vector<double> x = {5.0, 5.0};
  std::vector<double> y = {4.0, 6.0};
  EXPECT_FALSE(Nrmse(x, y).ok());
}

TEST(MetricsTest, RseKnownValue) {
  std::vector<double> x = {1.0, 3.0};  // mean 2, sum sq dev = 2.
  std::vector<double> y = {2.0, 2.0};  // errors 1, -1 -> sum sq = 2.
  Result<double> r = Rse(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 1.0);
}

TEST(MetricsTest, RsePerfectIsZero) {
  std::vector<double> x = {1.0, 3.0, 5.0};
  Result<double> r = Rse(x, x);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 0.0);
}

TEST(MetricsTest, PearsonPerfectPositive) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {10.0, 20.0, 30.0};
  Result<double> r = PearsonR(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 1.0, 1e-12);
}

TEST(MetricsTest, PearsonPerfectNegative) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {3.0, 2.0, 1.0};
  Result<double> r = PearsonR(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, -1.0, 1e-12);
}

TEST(MetricsTest, PearsonUncorrelated) {
  std::vector<double> x = {1.0, 2.0, 1.0, 2.0};
  std::vector<double> y = {1.0, 1.0, 2.0, 2.0};
  Result<double> r = PearsonR(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 0.0, 1e-12);
}

TEST(MetricsTest, PearsonConstantInputFails) {
  std::vector<double> x = {1.0, 1.0};
  std::vector<double> y = {1.0, 2.0};
  EXPECT_FALSE(PearsonR(x, y).ok());
}

TEST(MetricsTest, MaeKnownValue) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {2.0, 0.0, 3.0};
  Result<double> r = Mae(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 1.0);
}

TEST(MetricsTest, MaxAbsError) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {1.5, 1.0, 3.2};
  Result<double> r = MaxAbsError(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 1.0);
}

TEST(MetricsTest, MaxRelError) {
  std::vector<double> x = {10.0, 100.0};
  std::vector<double> y = {11.0, 105.0};
  Result<double> r = MaxRelError(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 0.1);
}

TEST(MetricsTest, LengthMismatchFails) {
  std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {1.0};
  EXPECT_EQ(Rmse(x, y).status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(Mae(x, y).ok());
  EXPECT_FALSE(PearsonR(x, y).ok());
}

TEST(MetricsTest, EmptyInputFails) {
  std::vector<double> empty;
  EXPECT_FALSE(Rmse(empty, empty).ok());
}

TEST(MetricsTest, PinnedRegistryMetricsBundleAllFour) {
  std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  std::vector<double> y = {0.1, 1.1, 1.9, 3.0};
  MetricContext ctx;
  ctx.actual = &x;
  ctx.predicted = &y;
  Result<std::vector<double>> m =
      EvaluateMetrics(PinnedForecastMetrics(), ctx);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_EQ(m->size(), 4u);
  EXPECT_GT((*m)[kMetricR], 0.99);
  EXPECT_GT((*m)[kMetricRmse], 0.0);
  EXPECT_NEAR((*m)[kMetricNrmse], (*m)[kMetricRmse] / 3.0, 1e-12);
  EXPECT_GT((*m)[kMetricRse], 0.0);
}

}  // namespace
}  // namespace lossyts
