// Coverage for the concurrency primitives behind the grid's stage DAG: the
// work-stealing thread pool (including its inline single-job mode), the
// mutex-guarded progress reporter, and identity-derived seed streams.

#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/progress.h"
#include "core/seed.h"
#include "core/thread_pool.h"

namespace lossyts {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, WaitCoversNestedSubmissions) {
  // DAG-style fan-out: each root task spawns children from inside the pool;
  // Wait() must not return until the grandchildren have run too.
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &leaves] {
      for (int j = 0; j < 4; ++j) {
        pool.Submit([&pool, &leaves] {
          pool.Submit([&leaves] {
            leaves.fetch_add(1, std::memory_order_relaxed);
          });
        });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(leaves.load(), 8 * 4);
}

TEST(ThreadPoolTest, InlineModeRunsImmediatelyOnCallingThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.jobs(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  bool ran = false;
  std::thread::id task_thread;
  pool.Submit([&] {
    ran = true;
    task_thread = std::this_thread::get_id();
  });
  // Inline mode completes the task inside Submit(), before Wait().
  EXPECT_TRUE(ran);
  EXPECT_EQ(task_thread, caller);
  pool.Wait();
}

TEST(ThreadPoolTest, InlineModePreservesSubmissionOrder) {
  // The sequential-equivalence contract: at jobs=1 task effects land in
  // exactly the order they were submitted.
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ZeroJobsResolvesToHardwareConcurrency) {
  EXPECT_GE(ThreadPool::DefaultJobs(), 1);
  ThreadPool pool(0);
  EXPECT_EQ(pool.jobs(), ThreadPool::DefaultJobs());
}

TEST(ThreadPoolTest, WaitIsReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  pool.Wait();  // No tasks yet: must not deadlock.
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(ran.load(), (wave + 1) * 50);
  }
}

TEST(ProgressTest, ConcurrentPrintfKeepsLinesIntact) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  Progress::SetStreamForTest(sink);

  constexpr int kWriters = 8;
  constexpr int kLines = 50;
  {
    ThreadPool pool(4);
    for (int w = 0; w < kWriters; ++w) {
      pool.Submit([w] {
        for (int i = 0; i < kLines; ++i) {
          Progress::Printf("[progress] writer %d line %d\n", w, i);
        }
      });
    }
    pool.Wait();
  }
  Progress::SetStreamForTest(nullptr);

  // Every emitted line must read back whole: no interleaved fragments, no
  // duplicates, none missing.
  std::rewind(sink);
  std::set<std::string> seen;
  char buffer[256];
  while (std::fgets(buffer, sizeof(buffer), sink) != nullptr) {
    const std::string line(buffer);
    int w = -1;
    int i = -1;
    ASSERT_EQ(std::sscanf(buffer, "[progress] writer %d line %d", &w, &i), 2)
        << "shredded line: " << line;
    EXPECT_TRUE(seen.insert(line).second) << "duplicate line: " << line;
  }
  std::fclose(sink);
  EXPECT_EQ(seen.size(), static_cast<size_t>(kWriters * kLines));
}

TEST(SeedTest, MixSeedIsDeterministicAndSaltSensitive) {
  EXPECT_EQ(MixSeed(7, 1), MixSeed(7, 1));
  EXPECT_NE(MixSeed(7, 1), MixSeed(7, 2));
  EXPECT_NE(MixSeed(7, 1), MixSeed(8, 1));
  // Salt 0 still scrambles: no identity salt that aliases the base stream.
  EXPECT_NE(MixSeed(7, 0), 7u);
}

TEST(SeedTest, TagSeedIsDeterministicAndTagSensitive) {
  // FNV-1a offset basis: pins the hash so seeds are stable across builds.
  EXPECT_EQ(HashTag(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(TagSeed(1, "ETTm1|DLinear|PMC"), TagSeed(1, "ETTm1|DLinear|PMC"));
  EXPECT_NE(TagSeed(1, "ETTm1|DLinear|PMC"), TagSeed(1, "ETTm1|DLinear|SZ"));
  EXPECT_NE(TagSeed(1, "ETTm1"), TagSeed(2, "ETTm1"));
}

}  // namespace
}  // namespace lossyts
