#include "data/datasets.h"

#include <gtest/gtest.h>

namespace lossyts::data {
namespace {

TEST(DatasetsTest, SixDatasetsInPaperOrder) {
  const std::vector<std::string>& names = DatasetNames();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "ETTm1");
  EXPECT_EQ(names[1], "ETTm2");
  EXPECT_EQ(names[2], "Solar");
  EXPECT_EQ(names[3], "Weather");
  EXPECT_EQ(names[4], "ElecDem");
  EXPECT_EQ(names[5], "Wind");
}

TEST(DatasetsTest, UnknownNameFails) {
  Result<Dataset> d = MakeDataset("Traffic");
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST(DatasetsTest, InvalidFractionFails) {
  DatasetOptions options;
  options.length_fraction = 0.0;
  EXPECT_FALSE(MakeDataset("ETTm1", options).ok());
  options.length_fraction = 1.5;
  EXPECT_FALSE(MakeDataset("ETTm1", options).ok());
}

TEST(DatasetsTest, DeterministicForSameSeed) {
  Result<Dataset> a = MakeDataset("ETTm1");
  Result<Dataset> b = MakeDataset("ETTm1");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->series.size(), b->series.size());
  for (size_t i = 0; i < a->series.size(); ++i) {
    EXPECT_EQ(a->series[i], b->series[i]);
  }
}

TEST(DatasetsTest, DifferentSeedsDiffer) {
  DatasetOptions options;
  options.seed = 1;
  Result<Dataset> a = MakeDataset("ETTm1", options);
  options.seed = 2;
  Result<Dataset> b = MakeDataset("ETTm1", options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  size_t differing = 0;
  for (size_t i = 0; i < a->series.size(); ++i) {
    if (a->series[i] != b->series[i]) ++differing;
  }
  EXPECT_GT(differing, a->series.size() / 2);
}

TEST(DatasetsTest, MakeAllDatasetsReturnsSix) {
  Result<std::vector<Dataset>> all = MakeAllDatasets();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 6u);
}

// One fixture per dataset checking that the synthetic series lands in the
// statistical regime that drives the paper's findings (Table 1).
class DatasetStatsTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    Result<Dataset> d = MakeDataset(GetParam());
    ASSERT_TRUE(d.ok());
    dataset_ = std::move(*d);
    Result<TimeSeries::Stats> stats = dataset_.series.ComputeStats();
    ASSERT_TRUE(stats.ok());
    stats_ = *stats;
  }

  Dataset dataset_;
  TimeSeries::Stats stats_;
};

TEST_P(DatasetStatsTest, MeanWithinThirtyPercentOfPaper) {
  EXPECT_NEAR(stats_.mean, dataset_.paper.mean,
              0.30 * std::abs(dataset_.paper.mean))
      << GetParam();
}

TEST_P(DatasetStatsTest, ValuesInsidePaperRange) {
  EXPECT_GE(stats_.min, dataset_.paper.min - 1e-9) << GetParam();
  EXPECT_LE(stats_.max, dataset_.paper.max + 1e-9) << GetParam();
}

TEST_P(DatasetStatsTest, SeriesLongEnoughForForecasting) {
  // Input window 96 + horizon 24 must fit many times over.
  EXPECT_GT(dataset_.series.size(), 1000u) << GetParam();
}

TEST_P(DatasetStatsTest, TimestampsFitThe32BitHeader) {
  EXPECT_LT(dataset_.series.start_timestamp(), (1ll << 31)) << GetParam();
  EXPECT_GT(dataset_.series.interval_seconds(), 0) << GetParam();
  EXPECT_LT(dataset_.series.interval_seconds(), 65536) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetStatsTest,
                         ::testing::ValuesIn(DatasetNames()));

// The rIQD regimes are what Table 3 and Figure 2's analysis hinge on:
// Weather tiny, ElecDem small, ETTm1/m2/Wind moderate-high, Solar extreme.
TEST(DatasetRegimesTest, RiqdClustersMatchPaper) {
  Result<std::vector<Dataset>> all = MakeAllDatasets();
  ASSERT_TRUE(all.ok());
  for (const Dataset& d : *all) {
    Result<TimeSeries::Stats> stats = d.series.ComputeStats();
    ASSERT_TRUE(stats.ok());
    const double riqd = stats->riqd_percent;
    if (d.name == "Weather") {
      EXPECT_LT(riqd, 15.0) << d.name << " riqd=" << riqd;
    } else if (d.name == "ElecDem") {
      EXPECT_GT(riqd, 12.0) << d.name << " riqd=" << riqd;
      EXPECT_LT(riqd, 50.0) << d.name << " riqd=" << riqd;
    } else if (d.name == "Solar") {
      EXPECT_GT(riqd, 140.0) << d.name << " riqd=" << riqd;
    } else {
      EXPECT_GT(riqd, 45.0) << d.name << " riqd=" << riqd;
      EXPECT_LT(riqd, 160.0) << d.name << " riqd=" << riqd;
    }
  }
}

TEST(DatasetRegimesTest, SolarHasNighttimeZeros) {
  Result<Dataset> solar = MakeDataset("Solar");
  ASSERT_TRUE(solar.ok());
  size_t zeros = 0;
  for (double v : solar->series.values()) {
    if (v == 0.0) ++zeros;
  }
  // Nights are at least a third of the samples and reported Q1 is 0.
  EXPECT_GT(zeros, solar->series.size() / 3);
  Result<TimeSeries::Stats> stats = solar->series.ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->q1, 0.0);
}

TEST(DatasetRegimesTest, WindHasNegativeIdlePower) {
  Result<Dataset> wind = MakeDataset("Wind");
  ASSERT_TRUE(wind.ok());
  Result<TimeSeries::Stats> stats = wind->series.ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats->min, 0.0);
  EXPECT_GT(stats->max, 1000.0);
}

TEST(DatasetRegimesTest, SeasonLengthsMatchSamplingIntervals) {
  Result<std::vector<Dataset>> all = MakeAllDatasets();
  ASSERT_TRUE(all.ok());
  for (const Dataset& d : *all) {
    if (d.name == "ETTm1" || d.name == "ETTm2") {
      EXPECT_EQ(d.season_length, 96u);
    } else if (d.name == "Solar" || d.name == "Weather") {
      EXPECT_EQ(d.season_length, 144u);
    } else if (d.name == "ElecDem") {
      EXPECT_EQ(d.season_length, 48u);
    }
  }
}

}  // namespace
}  // namespace lossyts::data
