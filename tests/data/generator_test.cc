#include "data/generator.h"

#include <cmath>

#include <gtest/gtest.h>

namespace lossyts::data {
namespace {

TEST(GeneratorTest, SinusoidPeriodAndAmplitude) {
  std::vector<double> s = Sinusoid(100, 20.0, 3.0);
  EXPECT_NEAR(s[0], 0.0, 1e-12);
  EXPECT_NEAR(s[5], 3.0, 1e-12);   // Quarter period -> peak.
  EXPECT_NEAR(s[10], 0.0, 1e-9);   // Half period -> zero.
  EXPECT_NEAR(s[15], -3.0, 1e-9);  // Three quarters -> trough.
  EXPECT_NEAR(s[20], s[0], 1e-9);  // Full period repeats.
}

TEST(GeneratorTest, SinusoidPhaseShift) {
  std::vector<double> s = Sinusoid(10, 20.0, 1.0, 3.14159265358979 / 2.0);
  EXPECT_NEAR(s[0], 1.0, 1e-9);  // cos at t=0.
}

TEST(GeneratorTest, Ar1NoiseIsStationaryIsh) {
  Rng rng(1);
  std::vector<double> noise = Ar1Noise(100000, 0.9, 1.0, rng);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : noise) {
    sum += x;
    sum_sq += x * x;
  }
  const double n = static_cast<double>(noise.size());
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.1);
  // Marginal variance of AR(1): sigma^2 / (1 - phi^2) = 1/0.19.
  EXPECT_NEAR(var, 1.0 / 0.19, 0.6);
}

TEST(GeneratorTest, Ar1NoiseIsAutocorrelated) {
  Rng rng(2);
  std::vector<double> noise = Ar1Noise(50000, 0.95, 1.0, rng);
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 1; i < noise.size(); ++i) {
    num += noise[i] * noise[i - 1];
    den += noise[i] * noise[i];
  }
  EXPECT_GT(num / den, 0.9);
}

TEST(GeneratorTest, BoundedWalkStaysInBounds) {
  Rng rng(3);
  std::vector<double> walk = BoundedWalk(100000, 5.0, 0.5, 0.0, 10.0, rng);
  for (double x : walk) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 10.0);
  }
}

TEST(GeneratorTest, BoundedWalkMoves) {
  Rng rng(4);
  std::vector<double> walk = BoundedWalk(1000, 5.0, 0.5, 0.0, 10.0, rng);
  double min = walk[0];
  double max = walk[0];
  for (double x : walk) {
    min = std::min(min, x);
    max = std::max(max, x);
  }
  EXPECT_GT(max - min, 1.0);
}

TEST(GeneratorTest, MeanRevertingWalkPullsTowardsMu) {
  Rng rng(5);
  std::vector<double> walk = MeanRevertingWalk(200000, 0.0, 10.0, 0.01, 0.1, rng);
  double sum = 0.0;
  for (size_t i = walk.size() / 2; i < walk.size(); ++i) sum += walk[i];
  EXPECT_NEAR(sum / (walk.size() / 2.0), 10.0, 1.0);
}

TEST(GeneratorTest, ClampInPlace) {
  std::vector<double> v = {-5.0, 0.0, 5.0, 10.0};
  ClampInPlace(v, -1.0, 6.0);
  EXPECT_DOUBLE_EQ(v[0], -1.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 5.0);
  EXPECT_DOUBLE_EQ(v[3], 6.0);
}

TEST(GeneratorTest, AddInPlace) {
  std::vector<double> a = {1.0, 2.0};
  AddInPlace(a, {10.0, 20.0});
  EXPECT_DOUBLE_EQ(a[0], 11.0);
  EXPECT_DOUBLE_EQ(a[1], 22.0);
}

}  // namespace
}  // namespace lossyts::data
