#include "data/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace lossyts::data {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/lossyts_csv_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream file(path_);
    file << content;
  }

  std::string path_;
};

TEST_F(CsvTest, SaveLoadRoundTrip) {
  TimeSeries ts(1000, 60, {1.5, 2.5, 3.5});
  ASSERT_TRUE(SaveCsv(ts, path_).ok());
  Result<TimeSeries> loaded = LoadCsv(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->start_timestamp(), 1000);
  EXPECT_EQ(loaded->interval_seconds(), 60);
  EXPECT_DOUBLE_EQ((*loaded)[0], 1.5);
  EXPECT_DOUBLE_EQ((*loaded)[2], 3.5);
}

TEST_F(CsvTest, LoadWithoutTimestampColumn) {
  WriteFile("value\n10\n20\n30\n");
  CsvOptions options;
  options.timestamp_column = -1;
  options.value_column = 0;
  options.fallback_interval_seconds = 300;
  Result<TimeSeries> loaded = LoadCsv(path_, options);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->interval_seconds(), 300);
  EXPECT_DOUBLE_EQ((*loaded)[1], 20.0);
}

TEST_F(CsvTest, NonEpochTimestampsFallBack) {
  WriteFile("date,value\n2022-01-01,5\n2022-01-02,6\n");
  CsvOptions options;
  options.fallback_interval_seconds = 86400;
  Result<TimeSeries> loaded = LoadCsv(path_, options);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->interval_seconds(), 86400);
}

TEST_F(CsvTest, MissingFileFails) {
  Result<TimeSeries> loaded = LoadCsv("/nonexistent/file.csv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, ShortRowFails) {
  WriteFile("timestamp,value\n100,1\n200\n");
  EXPECT_FALSE(LoadCsv(path_).ok());
}

TEST_F(CsvTest, NonNumericValueFails) {
  WriteFile("timestamp,value\n100,1\n200,oops\n");
  Result<TimeSeries> loaded = LoadCsv(path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(CsvTest, EmptyFileFails) {
  WriteFile("timestamp,value\n");
  EXPECT_FALSE(LoadCsv(path_).ok());
}

TEST_F(CsvTest, CustomDelimiter) {
  WriteFile("timestamp;value\n100;1.5\n160;2.5\n");
  CsvOptions options;
  options.delimiter = ';';
  Result<TimeSeries> loaded = LoadCsv(path_, options);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->interval_seconds(), 60);
}

TEST_F(CsvTest, SelectsValueColumn) {
  WriteFile("timestamp,a,b\n100,1,10\n200,2,20\n");
  CsvOptions options;
  options.value_column = 2;
  Result<TimeSeries> loaded = LoadCsv(path_, options);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ((*loaded)[0], 10.0);
  EXPECT_DOUBLE_EQ((*loaded)[1], 20.0);
}

}  // namespace
}  // namespace lossyts::data
