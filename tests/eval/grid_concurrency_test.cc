// Determinism contract of the parallel grid: RunGrid must produce
// byte-identical record streams at every --jobs value — including failed
// cells under armed failpoints — each transform must be computed exactly
// once per (dataset, compressor, bound), and checkpoint kill-and-resume must
// keep working when the sweep runs on a thread pool.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/failpoint.h"
#include "core/thread_pool.h"
#include "eval/artifact_store.h"
#include "eval/checkpoint.h"
#include "eval/compression_sweep.h"
#include "eval/grid.h"

namespace lossyts::eval {
namespace {

// Same tiny grid as grid_test.cc: one dataset, two models (GBoost without
// and DLinear with the NN training loop), one compressor, two bounds.
GridOptions TinyGrid(int jobs) {
  GridOptions options;
  options.datasets = {"ETTm1"};
  options.models = {"GBoost", "DLinear"};
  options.compressors = {"PMC"};
  options.error_bounds = {0.05, 0.4};
  options.data.length_fraction = 0.02;
  options.forecast.input_length = 48;
  options.forecast.horizon = 12;
  options.forecast.max_epochs = 3;
  options.forecast.max_train_windows = 48;
  options.scenario.max_eval_windows = 16;
  options.jobs = jobs;
  return options;
}

// The byte-level view the determinism contract is stated in: the exact CSV
// rows a checkpoint or cache would contain, in return order.
std::vector<std::string> Rows(const std::vector<GridRecord>& records) {
  std::vector<std::string> rows;
  rows.reserve(records.size());
  for (const GridRecord& r : records) rows.push_back(FormatGridRow(r));
  return rows;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFileOrDie(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out << contents;
}

class GridConcurrencyTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::DisarmAll(); }
};

TEST_F(GridConcurrencyTest, ParallelRunIsByteIdenticalToSequential) {
  Result<std::vector<GridRecord>> sequential = RunGrid(TinyGrid(1));
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

  Result<std::vector<GridRecord>> parallel = RunGrid(TinyGrid(8));
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(Rows(*sequential), Rows(*parallel));
}

TEST_F(GridConcurrencyTest, FailedCellsAreByteIdenticalAcrossJobs) {
  // An all-hits window fires on every train_step regardless of scheduling,
  // so DLinear's three cells fail identically at any parallelism — message,
  // error code and attempt count included.
  FailPoints::Arm("train_step", 1, 1000000);
  Result<std::vector<GridRecord>> sequential = RunGrid(TinyGrid(1));
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

  FailPoints::Arm("train_step", 1, 1000000);  // Re-arm: resets the counter.
  Result<std::vector<GridRecord>> parallel = RunGrid(TinyGrid(8));
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  FailPoints::DisarmAll();

  EXPECT_EQ(Rows(*sequential), Rows(*parallel));
  EXPECT_EQ(FailedRecords(*sequential).size(), 3u);  // DLinear x 3 cells.
}

TEST_F(GridConcurrencyTest, TransformComputedOncePerTriple) {
  // Arm the compress site far beyond any plausible hit count: nothing fires,
  // but the armed counter tallies every RunPipeline call. With the artifact
  // store each (dataset, compressor, bound) transform runs exactly once, not
  // once per model that consumes it.
  FailPoints::Arm("compress", 1000000000, 1);
  Result<std::vector<GridRecord>> records = RunGrid(TinyGrid(4));
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(FailPoints::HitCount("compress"), 2u);  // PMC x {0.05, 0.4}.
  FailPoints::DisarmAll();
}

TEST_F(GridConcurrencyTest, KillAndResumeWorksUnderParallelism) {
  const GridOptions options = TinyGrid(4);
  const std::string path = TempPath("ckpt_parallel_resume.csv");
  std::remove(path.c_str());

  Result<std::vector<GridRecord>> uninterrupted = RunGrid(TinyGrid(1));
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().ToString();
  ASSERT_EQ(uninterrupted->size(), 6u);

  Result<std::vector<GridRecord>> first = LoadOrRunGrid(options, path);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(Rows(*first), Rows(*uninterrupted));

  // Tear the checkpoint as if the parallel sweep was killed mid-write: drop
  // the footer and the tail of the last row. Rows land in completion order
  // under jobs > 1; resume keys by CellKey, so any surviving subset is fine.
  std::string contents = ReadFileOrDie(path);
  const size_t footer = contents.find("#complete");
  ASSERT_NE(footer, std::string::npos);
  ASSERT_GT(footer, 12u);
  WriteFileOrDie(path, contents.substr(0, footer - 12));

  Result<GridCheckpoint> torn =
      LoadGridCheckpoint(path, GridOptionsHash(options));
  ASSERT_TRUE(torn.ok()) << torn.status().ToString();
  EXPECT_FALSE(torn->complete);
  ASSERT_LT(torn->records.size(), 6u);

  // Resume on the pool: salvaged cells splice back into canonical order and
  // the result matches the never-interrupted sequential sweep byte for byte.
  Result<std::vector<GridRecord>> resumed = LoadOrRunGrid(options, path);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(Rows(*resumed), Rows(*uninterrupted));
  std::remove(path.c_str());
}

TEST_F(GridConcurrencyTest, ConfigErrorAbortsIdenticallyAcrossJobs) {
  GridOptions bad1 = TinyGrid(1);
  bad1.models = {"GBoost", "NoSuchModel"};
  Result<std::vector<GridRecord>> sequential = RunGrid(bad1);
  ASSERT_FALSE(sequential.ok());

  GridOptions bad8 = TinyGrid(8);
  bad8.models = {"GBoost", "NoSuchModel"};
  Result<std::vector<GridRecord>> parallel = RunGrid(bad8);
  ASSERT_FALSE(parallel.ok());

  EXPECT_EQ(sequential.status().code(), parallel.status().code());
  EXPECT_EQ(sequential.status().ToString(), parallel.status().ToString());
}

TEST_F(GridConcurrencyTest, GridOptionsHashIgnoresJobs) {
  // Checkpoints written at any parallelism must resume at any other.
  EXPECT_EQ(GridOptionsHash(TinyGrid(1)), GridOptionsHash(TinyGrid(8)));
}

TEST_F(GridConcurrencyTest, CompressionSweepIsByteIdenticalAcrossJobs) {
  SweepOptions options;
  options.datasets = {"ETTm1", "Solar"};
  options.error_bounds = {0.05, 0.2};
  options.data.length_fraction = 0.02;

  Result<std::vector<SweepRecord>> sequential = RunCompressionSweep(options);
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

  options.jobs = 4;
  Result<std::vector<SweepRecord>> parallel = RunCompressionSweep(options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  ASSERT_EQ(sequential->size(), parallel->size());
  for (size_t i = 0; i < sequential->size(); ++i) {
    const SweepRecord& a = (*sequential)[i];
    const SweepRecord& b = (*parallel)[i];
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(a.dataset, b.dataset);
    EXPECT_EQ(a.compressor, b.compressor);
    EXPECT_DOUBLE_EQ(a.error_bound, b.error_bound);
    EXPECT_DOUBLE_EQ(a.te_nrmse, b.te_nrmse);
    EXPECT_DOUBLE_EQ(a.compression_ratio, b.compression_ratio);
    EXPECT_DOUBLE_EQ(a.segment_count, b.segment_count);
    EXPECT_DOUBLE_EQ(a.gz_bytes, b.gz_bytes);
  }
}

TEST(ArtifactStoreTest, ComputesOncePerKeyAndLooksUp) {
  ArtifactStore<int> store;
  int calls = 0;
  std::shared_ptr<const int> a =
      store.GetOrCompute("k", [&calls] { return ++calls; });
  std::shared_ptr<const int> b =
      store.GetOrCompute("k", [&calls] { return ++calls; });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(*a, 1);
  ASSERT_NE(store.Lookup("k"), nullptr);
  EXPECT_EQ(store.Lookup("missing"), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ArtifactStoreTest, ConcurrentGetOrComputeRunsMakeOnce) {
  ArtifactStore<int> store;
  std::atomic<int> calls{0};
  ThreadPool pool(8);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&store, &calls] {
      std::shared_ptr<const int> value = store.GetOrCompute("shared", [&calls] {
        // Widen the race window: every caller must still see one compute.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return calls.fetch_add(1, std::memory_order_relaxed) + 41;
      });
      EXPECT_EQ(*value, 41);
    });
  }
  pool.Wait();
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace lossyts::eval
