#include "eval/grid.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "eval/report.h"

namespace lossyts::eval {
namespace {

// A deliberately tiny grid: one dataset, two cheap models, one compressor,
// two error bounds, so the whole sweep runs in about a second.
GridOptions TinyGrid() {
  GridOptions options;
  options.datasets = {"ETTm1"};
  options.models = {"GBoost", "DLinear"};
  options.compressors = {"PMC"};
  options.error_bounds = {0.05, 0.4};
  options.data.length_fraction = 0.02;
  options.forecast.input_length = 48;
  options.forecast.horizon = 12;
  options.forecast.max_epochs = 3;
  options.forecast.max_train_windows = 48;
  options.scenario.max_eval_windows = 16;
  return options;
}

TEST(GridTest, ProducesBaselineAndTransformedRows) {
  Result<std::vector<GridRecord>> records = RunGrid(TinyGrid());
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  // Per model: 1 baseline + 2 error bounds.
  EXPECT_EQ(records->size(), 2u * 3u);
  size_t baselines = 0;
  for (const GridRecord& r : *records) {
    if (r.compressor == "NONE") {
      ++baselines;
      EXPECT_EQ(r.tfe, 0.0);
      EXPECT_EQ(r.error_bound, 0.0);
    } else {
      EXPECT_EQ(r.compressor, "PMC");
      EXPECT_GT(r.compression_ratio, 1.0);
      EXPECT_GT(r.te_nrmse, 0.0);
    }
    EXPECT_GT(r.nrmse(), 0.0);
  }
  EXPECT_EQ(baselines, 2u);
}

TEST(GridTest, TfeConsistentWithBaseline) {
  Result<std::vector<GridRecord>> records = RunGrid(TinyGrid());
  ASSERT_TRUE(records.ok());
  for (const GridRecord& r : *records) {
    if (r.compressor == "NONE") continue;
    // Find this row's baseline.
    for (const GridRecord& b : *records) {
      if (b.compressor == "NONE" && b.model == r.model &&
          b.dataset == r.dataset && b.seed == r.seed) {
        EXPECT_NEAR(r.tfe, (r.nrmse() - b.nrmse()) / b.nrmse(), 1e-9);
      }
    }
  }
}

TEST(GridTest, HigherErrorBoundHasHigherTe) {
  Result<std::vector<GridRecord>> records = RunGrid(TinyGrid());
  ASSERT_TRUE(records.ok());
  double te_low = -1.0;
  double te_high = -1.0;
  for (const GridRecord& r : *records) {
    if (r.model != "GBoost") continue;
    if (r.error_bound == 0.05) te_low = r.te_nrmse;
    if (r.error_bound == 0.4) te_high = r.te_nrmse;
  }
  ASSERT_GE(te_low, 0.0);
  EXPECT_GT(te_high, te_low);
}

TEST(GridTest, CsvRoundTrip) {
  Result<std::vector<GridRecord>> records = RunGrid(TinyGrid());
  ASSERT_TRUE(records.ok());
  const std::string path = ::testing::TempDir() + "/grid_cache_test.csv";
  ASSERT_TRUE(SaveGridCsv(*records, path).ok());
  Result<std::vector<GridRecord>> loaded = LoadGridCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), records->size());
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ((*loaded)[i].dataset, (*records)[i].dataset);
    EXPECT_EQ((*loaded)[i].model, (*records)[i].model);
    EXPECT_EQ((*loaded)[i].compressor, (*records)[i].compressor);
    EXPECT_NEAR((*loaded)[i].tfe, (*records)[i].tfe, 1e-9);
    EXPECT_NEAR((*loaded)[i].compression_ratio,
                (*records)[i].compression_ratio, 1e-9);
  }
  std::remove(path.c_str());
}

TEST(GridTest, LoadOrRunUsesCache) {
  const std::string path = ::testing::TempDir() + "/grid_cache_test2.csv";
  std::remove(path.c_str());
  Result<std::vector<GridRecord>> first = LoadOrRunGrid(TinyGrid(), path);
  ASSERT_TRUE(first.ok());
  // Second call must hit the cache (same contents, instant).
  Result<std::vector<GridRecord>> second = LoadOrRunGrid(TinyGrid(), path);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->size(), second->size());
  std::remove(path.c_str());
}

TEST(GridTest, MissingCacheFileIsNotFound) {
  EXPECT_EQ(LoadGridCsv("/nonexistent/grid.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(GridTest, UnknownDatasetFails) {
  GridOptions options = TinyGrid();
  options.datasets = {"NoSuchDataset"};
  EXPECT_FALSE(RunGrid(options).ok());
}

TEST(ReportTest, TableAlignsColumns) {
  TableWriter table({"name", "value"});
  table.AddRow({"a", "1.0"});
  table.AddRow({"long-name", "2.25"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("long-name"), std::string::npos);
  EXPECT_NE(rendered.find("----"), std::string::npos);
}

TEST(ReportTest, Statistics) {
  EXPECT_DOUBLE_EQ(MeanOf({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(MedianOf({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(MedianOf({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(MeanOf({}), 0.0);
  EXPECT_DOUBLE_EQ(CiHalfWidth95({5.0}), 0.0);
  EXPECT_GT(CiHalfWidth95({1.0, 2.0, 3.0, 4.0}), 0.0);
}

TEST(ReportTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace lossyts::eval
