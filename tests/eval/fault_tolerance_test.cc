// Fault-injection coverage for the grid's per-cell isolation: sweeps with
// deterministically injected compressor and training failures must complete,
// mark exactly the affected cells as failed, and leave every other record
// identical to a fault-free run.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/failpoint.h"
#include "eval/grid.h"
#include "nn/optimizer.h"

namespace lossyts::eval {
namespace {

// Same tiny grid as grid_test.cc: GBoost (no NN training loop) and DLinear
// (full NN training loop), one compressor, two error bounds, one seed.
GridOptions TinyGrid() {
  GridOptions options;
  options.datasets = {"ETTm1"};
  options.models = {"GBoost", "DLinear"};
  options.compressors = {"PMC"};
  options.error_bounds = {0.05, 0.4};
  options.data.length_fraction = 0.02;
  options.forecast.input_length = 48;
  options.forecast.horizon = 12;
  options.forecast.max_epochs = 3;
  options.forecast.max_train_windows = 48;
  options.scenario.max_eval_windows = 16;
  return options;
}

void ExpectSameRecord(const GridRecord& a, const GridRecord& b) {
  EXPECT_EQ(a.dataset, b.dataset);
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.compressor, b.compressor);
  EXPECT_DOUBLE_EQ(a.error_bound, b.error_bound);
  EXPECT_EQ(a.seed, b.seed);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.metrics[i], b.metrics[i]) << "metric " << i;
  }
  EXPECT_DOUBLE_EQ(a.tfe, b.tfe);
  EXPECT_DOUBLE_EQ(a.te_nrmse, b.te_nrmse);
  EXPECT_DOUBLE_EQ(a.te_rmse, b.te_rmse);
  EXPECT_DOUBLE_EQ(a.compression_ratio, b.compression_ratio);
  EXPECT_DOUBLE_EQ(a.segment_count, b.segment_count);
  EXPECT_EQ(a.error_code, b.error_code);
}

class FaultToleranceTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::DisarmAll(); }
};

TEST_F(FaultToleranceTest, InjectedCompressorFailureIsolatesOneTransform) {
  Result<std::vector<GridRecord>> clean = RunGrid(TinyGrid());
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // The transform loop runs (PMC, 0.05) then (PMC, 0.4); with one retry the
  // first transform consumes hits 1-2. Arm both so the cell fails for good.
  GridOptions options = TinyGrid();
  const uint64_t attempts = 1 + options.max_cell_retries;
  FailPoints::Arm("compress", 1, attempts);
  Result<std::vector<GridRecord>> faulty = RunGrid(options);
  FailPoints::DisarmAll();
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();

  ASSERT_EQ(faulty->size(), clean->size());
  size_t failed_cells = 0;
  for (size_t i = 0; i < faulty->size(); ++i) {
    const GridRecord& f = (*faulty)[i];
    const GridRecord& c = (*clean)[i];
    if (f.compressor == "PMC" && f.error_bound == 0.05) {
      // Exactly the injected transform's dependent cells fail.
      EXPECT_TRUE(f.failed());
      EXPECT_EQ(f.error_code, static_cast<int32_t>(StatusCode::kInternal));
      EXPECT_NE(f.error.find("failpoint compress"), std::string::npos);
      EXPECT_EQ(f.attempts, static_cast<int32_t>(attempts));
      ++failed_cells;
    } else {
      ExpectSameRecord(f, c);
      EXPECT_FALSE(f.failed());
    }
  }
  // One failed transform, shared by both models.
  EXPECT_EQ(failed_cells, 2u);
}

TEST_F(FaultToleranceTest, InjectedTrainingFailureIsolatesOneModel) {
  Result<std::vector<GridRecord>> clean = RunGrid(TinyGrid());
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // Only DLinear runs the NN training loop; firing every train_step hit
  // fails all of its fit attempts while GBoost never touches the site.
  FailPoints::Arm("train_step", 1, 1000000);
  Result<std::vector<GridRecord>> faulty = RunGrid(TinyGrid());
  FailPoints::DisarmAll();
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();

  ASSERT_EQ(faulty->size(), clean->size());
  size_t failed_cells = 0;
  for (size_t i = 0; i < faulty->size(); ++i) {
    const GridRecord& f = (*faulty)[i];
    const GridRecord& c = (*clean)[i];
    if (f.model == "DLinear") {
      EXPECT_TRUE(f.failed());
      EXPECT_NE(f.error.find("failpoint train_step"), std::string::npos);
      EXPECT_EQ(f.attempts, 2);  // Original fit + one reseeded retry.
      ++failed_cells;
    } else {
      ExpectSameRecord(f, c);
    }
  }
  // DLinear's baseline and both transformed cells.
  EXPECT_EQ(failed_cells, 3u);
}

TEST_F(FaultToleranceTest, TransientFailureIsRetriedAndSucceeds) {
  Result<std::vector<GridRecord>> clean = RunGrid(TinyGrid());
  ASSERT_TRUE(clean.ok());

  // Fail only the first compress hit: the retry succeeds, so the sweep's
  // metrics match the fault-free run and the record counts the attempts.
  FailPoints::Arm("compress", 1, 1);
  Result<std::vector<GridRecord>> retried = RunGrid(TinyGrid());
  FailPoints::DisarmAll();
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();

  ASSERT_EQ(retried->size(), clean->size());
  for (size_t i = 0; i < retried->size(); ++i) {
    const GridRecord& f = (*retried)[i];
    ExpectSameRecord(f, (*clean)[i]);
    EXPECT_FALSE(f.failed());
    if (f.compressor == "PMC" && f.error_bound == 0.05) {
      EXPECT_EQ(f.attempts, 2);
    }
  }
}

TEST_F(FaultToleranceTest, RetrySeedIsDeterministicAndDistinct) {
  EXPECT_EQ(RetrySeed(7, 0), 7u);
  EXPECT_EQ(RetrySeed(7, 1), RetrySeed(7, 1));
  EXPECT_NE(RetrySeed(7, 1), 7u);
  EXPECT_NE(RetrySeed(7, 1), RetrySeed(7, 2));
  EXPECT_NE(RetrySeed(7, 1), RetrySeed(8, 1));
}

TEST_F(FaultToleranceTest, FailedRecordsFindsOnlyFailures) {
  std::vector<GridRecord> records(3);
  records[1].error_code = static_cast<int32_t>(StatusCode::kInternal);
  records[1].error = "boom";
  const std::vector<const GridRecord*> failed = FailedRecords(records);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], &records[1]);
}

TEST_F(FaultToleranceTest, NonFiniteGradientAbortsAdamStep) {
  nn::Var param = nn::MakeVar(nn::Tensor(1, 2, 1.0), /*requires_grad=*/true);
  nn::Adam adam({param});
  param->grad = nn::Tensor(1, 2, std::numeric_limits<double>::quiet_NaN());
  Status s = adam.Step();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  // Parameters must be untouched by the rejected step.
  EXPECT_DOUBLE_EQ(param->value(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(param->value(0, 1), 1.0);
}

}  // namespace
}  // namespace lossyts::eval
