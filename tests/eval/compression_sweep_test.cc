#include "eval/compression_sweep.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace lossyts::eval {
namespace {

SweepOptions TinySweep() {
  SweepOptions options;
  options.datasets = {"ETTm1"};
  options.error_bounds = {0.05, 0.3};
  options.data.length_fraction = 0.02;
  return options;
}

TEST(SweepTest, ProducesLossyAndGorillaRows) {
  Result<std::vector<SweepRecord>> records = RunCompressionSweep(TinySweep());
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  // 3 lossy methods x 2 bounds + 1 GORILLA row.
  EXPECT_EQ(records->size(), 7u);
  size_t gorilla_rows = 0;
  for (const SweepRecord& r : *records) {
    EXPECT_GT(r.compression_ratio, 0.0);
    EXPECT_GT(r.raw_gz_bytes, 0.0);
    EXPECT_GT(r.gz_bytes, 0.0);
    if (r.compressor == "GORILLA") {
      ++gorilla_rows;
      EXPECT_EQ(r.error_bound, 0.0);
      EXPECT_EQ(r.te_nrmse, 0.0);
    } else {
      EXPECT_GT(r.te_nrmse, 0.0);
    }
  }
  EXPECT_EQ(gorilla_rows, 1u);
}

TEST(SweepTest, GorillaCanBeExcluded) {
  SweepOptions options = TinySweep();
  options.include_gorilla = false;
  Result<std::vector<SweepRecord>> records = RunCompressionSweep(options);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 6u);
}

TEST(SweepTest, TeAndCrGrowWithBound) {
  Result<std::vector<SweepRecord>> records = RunCompressionSweep(TinySweep());
  ASSERT_TRUE(records.ok());
  for (const std::string& method : {"PMC", "SWING", "SZ"}) {
    const SweepRecord* low = nullptr;
    const SweepRecord* high = nullptr;
    for (const SweepRecord& r : *records) {
      if (r.compressor != method) continue;
      if (r.error_bound == 0.05) low = &r;
      if (r.error_bound == 0.3) high = &r;
    }
    ASSERT_NE(low, nullptr);
    ASSERT_NE(high, nullptr);
    EXPECT_GT(high->te_nrmse, low->te_nrmse) << method;
    EXPECT_GT(high->compression_ratio, low->compression_ratio) << method;
  }
}

TEST(SweepTest, CsvRoundTrip) {
  Result<std::vector<SweepRecord>> records = RunCompressionSweep(TinySweep());
  ASSERT_TRUE(records.ok());
  const std::string path = ::testing::TempDir() + "/sweep_cache_test.csv";
  ASSERT_TRUE(SaveSweepCsv(*records, path).ok());
  Result<std::vector<SweepRecord>> loaded = LoadSweepCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), records->size());
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ((*loaded)[i].dataset, (*records)[i].dataset);
    EXPECT_EQ((*loaded)[i].compressor, (*records)[i].compressor);
    EXPECT_NEAR((*loaded)[i].compression_ratio,
                (*records)[i].compression_ratio, 1e-9);
    EXPECT_NEAR((*loaded)[i].segment_count, (*records)[i].segment_count,
                1e-9);
  }
  std::remove(path.c_str());
}

TEST(SweepTest, LoadOrRunCaches) {
  const std::string path = ::testing::TempDir() + "/sweep_cache_test2.csv";
  std::remove(path.c_str());
  Result<std::vector<SweepRecord>> first = LoadOrRunSweep(TinySweep(), path);
  ASSERT_TRUE(first.ok());
  Result<std::vector<SweepRecord>> second = LoadOrRunSweep(TinySweep(), path);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->size(), second->size());
  std::remove(path.c_str());
}

TEST(SweepTest, MissingCacheIsNotFound) {
  EXPECT_EQ(LoadSweepCsv("/nonexistent/sweep.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(SweepTest, UnknownDatasetFails) {
  SweepOptions options = TinySweep();
  options.datasets = {"Nope"};
  EXPECT_FALSE(RunCompressionSweep(options).ok());
}

}  // namespace
}  // namespace lossyts::eval
