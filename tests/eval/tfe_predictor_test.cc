#include "eval/tfe_predictor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "compress/pipeline.h"
#include "core/rng.h"
#include "features/registry.h"

namespace lossyts::eval {
namespace {

TEST(TfePredictorTest, FeatureCountIs44) {
  EXPECT_EQ(TfePredictor::FeatureCount(), 44u);
  EXPECT_EQ(TfePredictor::FeatureCount(), features::kFeatureCount + 2);
}

TEST(TfePredictorTest, BuildFeaturesFromRealCompression) {
  Rng rng(1);
  std::vector<double> v(600);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 20.0 + 4.0 * std::sin(static_cast<double>(i) * 0.26) +
           0.3 * rng.Normal();
  }
  TimeSeries ts(0, 3600, std::move(v));
  Result<std::unique_ptr<compress::Compressor>> pmc =
      compress::MakeCompressor("PMC");
  ASSERT_TRUE(pmc.ok());
  Result<compress::PipelineResult> run = compress::RunPipeline(**pmc, ts, 0.1);
  ASSERT_TRUE(run.ok());
  Result<std::vector<double>> features = TfePredictor::BuildFeatures(
      ts, run->decompressed, 24, run->te_nrmse, run->compression_ratio);
  ASSERT_TRUE(features.ok()) << features.status().ToString();
  ASSERT_EQ(features->size(), TfePredictor::FeatureCount());
  for (double f : *features) EXPECT_TRUE(std::isfinite(f));
  // The TE and CR slots carry the pipeline measurements.
  EXPECT_DOUBLE_EQ((*features)[42], run->te_nrmse);
  EXPECT_DOUBLE_EQ((*features)[43], run->compression_ratio);
}

// Synthetic regression task: TFE is a known function of two feature slots.
std::vector<TfePredictor::Example> SyntheticExamples(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<TfePredictor::Example> examples(n);
  for (auto& e : examples) {
    e.features.assign(TfePredictor::FeatureCount(), 0.0);
    for (double& f : e.features) f = rng.Uniform(-1.0, 1.0);
    // TFE driven by feature 0 (say max_kl_shift change) and TE (slot 42).
    e.tfe = 0.5 * e.features[0] + 0.3 * e.features[42] +
            0.02 * rng.Normal();
  }
  return examples;
}

TEST(TfePredictorTest, LearnsSyntheticRelationship) {
  TfePredictor predictor;
  ASSERT_TRUE(predictor.Fit(SyntheticExamples(300, 2)).ok());
  EXPECT_GT(predictor.r_squared(), 0.7);

  // Held-out check: predictions correlate with the known function.
  const std::vector<TfePredictor::Example> test = SyntheticExamples(50, 3);
  double se = 0.0;
  double var = 0.0;
  double mean = 0.0;
  for (const auto& e : test) mean += e.tfe;
  mean /= static_cast<double>(test.size());
  for (const auto& e : test) {
    Result<double> pred = predictor.Predict(e.features);
    ASSERT_TRUE(pred.ok());
    se += (*pred - e.tfe) * (*pred - e.tfe);
    var += (e.tfe - mean) * (e.tfe - mean);
  }
  EXPECT_LT(se / var, 0.6);  // Out-of-sample R^2 > 0.4.
}

TEST(TfePredictorTest, ImportanceRanksDrivingFeatures) {
  TfePredictor predictor;
  ASSERT_TRUE(predictor.Fit(SyntheticExamples(300, 4)).ok());
  Result<std::vector<double>> importance = predictor.Importance();
  ASSERT_TRUE(importance.ok());
  ASSERT_EQ(importance->size(), TfePredictor::FeatureCount());
  // The two driving slots dominate any noise slot.
  EXPECT_GT((*importance)[0], (*importance)[5] * 3.0);
  EXPECT_GT((*importance)[42], (*importance)[5] * 2.0);
}

TEST(TfePredictorTest, TooFewExamplesFails) {
  TfePredictor predictor;
  EXPECT_FALSE(predictor.Fit(SyntheticExamples(5, 5)).ok());
}

TEST(TfePredictorTest, WrongFeatureCountFails) {
  TfePredictor predictor;
  std::vector<TfePredictor::Example> bad(20);
  for (auto& e : bad) {
    e.features.assign(3, 0.0);
    e.tfe = 0.0;
  }
  EXPECT_FALSE(predictor.Fit(bad).ok());
  ASSERT_TRUE(predictor.Fit(SyntheticExamples(50, 6)).ok());
  EXPECT_FALSE(predictor.Predict({1.0, 2.0}).ok());
}

TEST(TfePredictorTest, PredictBeforeFitFails) {
  TfePredictor predictor;
  EXPECT_FALSE(
      predictor.Predict(std::vector<double>(TfePredictor::FeatureCount(), 0.0))
          .ok());
  EXPECT_FALSE(predictor.Importance().ok());
}

}  // namespace
}  // namespace lossyts::eval
