// Sourcing CompressAtBound artifacts from chunk store files
// (eval/store_source.h): the stored path must reproduce the recompression
// path's reconstructed series, reject stale/mismatched stores, and fall
// back cleanly inside CompressAtBoundStage.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "eval/grid_stages.h"
#include "eval/store_source.h"
#include "store/reader.h"
#include "store/writer.h"

namespace lossyts::eval {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + name;
  return dir;
}

GridOptions SmallGrid() {
  GridOptions options;
  options.datasets = {"Solar"};
  options.compressors = {"PMC"};
  options.error_bounds = {0.05};
  options.data.length_fraction = 0.02;
  return options;
}

TEST(StoreSourceTest, BuildThenLoadMatchesRecompression) {
  const GridOptions options = SmallGrid();
  const std::string dir = TempDir("stores_match");
  ASSERT_TRUE(BuildTransformStores(options, dir).ok());

  DatasetArtifact dataset = LoadDatasetStage("Solar", options.data);
  ASSERT_TRUE(dataset.status.ok());
  Result<TransformArtifact> stored =
      LoadTransformFromStore(dir, "Solar", "PMC", 0.05, dataset.split.test);
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();
  EXPECT_TRUE(stored->from_store);
  EXPECT_TRUE(stored->status.ok());

  TransformArtifact recompressed = CompressAtBoundStage(
      "Solar", "PMC", 0.05, dataset.split.test, "", 1, false);
  ASSERT_TRUE(recompressed.status.ok());
  ASSERT_EQ(stored->series.size(), recompressed.series.size());
  // The store holds the same codec output chunked; reconstruction must be
  // bit-identical to running the codec over the whole split (both paths
  // reconstruct segment models with the same arithmetic), except that
  // chunking can place segment boundaries differently — so compare under
  // the error bound instead of bitwise.
  for (size_t i = 0; i < stored->series.size(); ++i) {
    const double raw = dataset.split.test.values()[i];
    const double from_store = stored->series.values()[i];
    EXPECT_LE(std::abs(from_store - raw), 0.05 * std::abs(raw) + 1e-12)
        << "point " << i;
  }
  EXPECT_TRUE(std::isfinite(stored->te_nrmse));
  EXPECT_GT(stored->compression_ratio, 0.0);
  EXPECT_GT(stored->segment_count, 0.0);
}

TEST(StoreSourceTest, MissingStoreIsNotFound) {
  DatasetArtifact dataset = LoadDatasetStage("Solar", SmallGrid().data);
  ASSERT_TRUE(dataset.status.ok());
  EXPECT_EQ(LoadTransformFromStore(TempDir("stores_none"), "Solar", "PMC",
                                   0.05, dataset.split.test)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(StoreSourceTest, MismatchedStoreIsRejected) {
  const GridOptions options = SmallGrid();
  const std::string dir = TempDir("stores_stale");
  ASSERT_TRUE(BuildTransformStores(options, dir).ok());
  DatasetArtifact dataset = LoadDatasetStage("Solar", options.data);
  ASSERT_TRUE(dataset.status.ok());
  // Wrong bound: the file exists for 0.05, the request says 0.1 — the path
  // encodes the bound, so this is NotFound rather than a silent mismatch.
  EXPECT_FALSE(LoadTransformFromStore(dir, "Solar", "PMC", 0.1,
                                      dataset.split.test)
                   .ok());
  // Stale store: same path, different split (a longer dataset). The grid
  // check must refuse rather than serve the wrong series.
  data::DatasetOptions bigger = options.data;
  bigger.length_fraction = 0.04;
  DatasetArtifact other = LoadDatasetStage("Solar", bigger);
  ASSERT_TRUE(other.status.ok());
  Result<TransformArtifact> stale =
      LoadTransformFromStore(dir, "Solar", "PMC", 0.05, other.split.test);
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StoreSourceTest, SalvagedStoreIsRefused) {
  const GridOptions options = SmallGrid();
  const std::string dir = TempDir("stores_salvaged");
  ASSERT_TRUE(BuildTransformStores(options, dir).ok());
  const std::string path = TransformStorePath(dir, "Solar", "PMC", 0.05);
  // Chop the footer off: the file reopens as a salvage, which the eval
  // integration must refuse (it needs the complete split).
  FILE* file = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(file, nullptr);
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  ASSERT_EQ(0, std::fclose(file));
  ASSERT_EQ(0, truncate(path.c_str(), size - 20));
  DatasetArtifact dataset = LoadDatasetStage("Solar", options.data);
  ASSERT_TRUE(dataset.status.ok());
  Result<TransformArtifact> refused =
      LoadTransformFromStore(dir, "Solar", "PMC", 0.05, dataset.split.test);
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StoreSourceTest, StageFallsBackToRecompression) {
  DatasetArtifact dataset = LoadDatasetStage("Solar", SmallGrid().data);
  ASSERT_TRUE(dataset.status.ok());
  // A store_dir with no store for this combination: the stage must still
  // produce a good artifact via recompression, flagged as not-from-store.
  TransformArtifact artifact = CompressAtBoundStage(
      "Solar", "PMC", 0.05, dataset.split.test, TempDir("stores_fallback"),
      1, false);
  EXPECT_TRUE(artifact.status.ok()) << artifact.status.ToString();
  EXPECT_FALSE(artifact.from_store);
  EXPECT_EQ(artifact.series.size(), dataset.split.test.size());
}

TEST(StoreSourceTest, StageUsesTheStoreWhenPresent) {
  const GridOptions options = SmallGrid();
  const std::string dir = TempDir("stores_used");
  ASSERT_TRUE(BuildTransformStores(options, dir).ok());
  DatasetArtifact dataset = LoadDatasetStage("Solar", options.data);
  ASSERT_TRUE(dataset.status.ok());
  TransformArtifact artifact = CompressAtBoundStage(
      "Solar", "PMC", 0.05, dataset.split.test, dir, 1, false);
  EXPECT_TRUE(artifact.status.ok());
  EXPECT_TRUE(artifact.from_store);
}

TEST(StoreSourceTest, BuildIsDeterministic) {
  const GridOptions options = SmallGrid();
  const std::string dir_a = TempDir("stores_det_a");
  const std::string dir_b = TempDir("stores_det_b");
  ASSERT_TRUE(BuildTransformStores(options, dir_a).ok());
  ASSERT_TRUE(BuildTransformStores(options, dir_b).ok());
  auto read = [](const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    EXPECT_TRUE(file.is_open()) << path;
    return std::vector<uint8_t>((std::istreambuf_iterator<char>(file)),
                                std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(read(TransformStorePath(dir_a, "Solar", "PMC", 0.05)),
            read(TransformStorePath(dir_b, "Solar", "PMC", 0.05)));
}

}  // namespace
}  // namespace lossyts::eval
