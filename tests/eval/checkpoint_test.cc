// Checkpoint/resume coverage: a sweep interrupted mid-run (torn checkpoint
// row) must salvage every intact row, recompute only the missing cells, and
// end up with records identical to an uninterrupted sweep.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/checkpoint.h"
#include "eval/grid.h"
#include "zip/crc32.h"

namespace lossyts::eval {
namespace {

GridOptions TinyGrid() {
  GridOptions options;
  options.datasets = {"ETTm1"};
  options.models = {"GBoost", "DLinear"};
  options.compressors = {"PMC"};
  options.error_bounds = {0.05, 0.4};
  options.data.length_fraction = 0.02;
  options.forecast.input_length = 48;
  options.forecast.horizon = 12;
  options.forecast.max_epochs = 3;
  options.forecast.max_train_windows = 48;
  options.scenario.max_eval_windows = 16;
  return options;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

void ExpectSameRecord(const GridRecord& a, const GridRecord& b) {
  EXPECT_EQ(a.dataset, b.dataset);
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.compressor, b.compressor);
  EXPECT_DOUBLE_EQ(a.error_bound, b.error_bound);
  EXPECT_EQ(a.seed, b.seed);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.metrics[i], b.metrics[i]) << "metric " << i;
  }
  EXPECT_DOUBLE_EQ(a.tfe, b.tfe);
  EXPECT_DOUBLE_EQ(a.te_nrmse, b.te_nrmse);
  EXPECT_DOUBLE_EQ(a.te_rmse, b.te_rmse);
  EXPECT_DOUBLE_EQ(a.compression_ratio, b.compression_ratio);
  EXPECT_DOUBLE_EQ(a.segment_count, b.segment_count);
  EXPECT_EQ(a.error_code, b.error_code);
  EXPECT_EQ(a.error, b.error);
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFileOrDie(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out << contents;
}

TEST(GridOptionsHashTest, StableForEqualOptionsSensitiveToChanges) {
  const uint32_t base = GridOptionsHash(TinyGrid());
  EXPECT_EQ(base, GridOptionsHash(TinyGrid()));

  GridOptions eb = TinyGrid();
  eb.error_bounds = {0.05, 0.5};
  EXPECT_NE(base, GridOptionsHash(eb));

  GridOptions model = TinyGrid();
  model.models = {"GBoost"};
  EXPECT_NE(base, GridOptionsHash(model));

  GridOptions epochs = TinyGrid();
  epochs.forecast.max_epochs = 4;
  EXPECT_NE(base, GridOptionsHash(epochs));

  // Retry budget and verbosity do not change which cells a sweep computes,
  // so caches stay valid across them.
  GridOptions retries = TinyGrid();
  retries.max_cell_retries = 5;
  EXPECT_EQ(base, GridOptionsHash(retries));
}

TEST(GridRowTest, FormatParseRoundTripsFaultFields) {
  GridRecord record;
  record.dataset = "ETTm1";
  record.model = "DLinear";
  record.compressor = "PMC";
  record.error_bound = 0.1 + 1e-17;
  record.seed = 3;
  record.metrics = {0.912345678901234567, 0.25, 1.5, 0.07};
  record.tfe = -0.02;
  record.te_nrmse = 0.01;
  record.compression_ratio = 11.25;
  record.error_code = static_cast<int32_t>(StatusCode::kInternal);
  record.attempts = 2;
  record.error = "non-finite loss, epoch 2\nsecond line";

  Result<GridRecord> parsed = ParseGridRow(FormatGridRow(record));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->error_bound, record.error_bound);
  EXPECT_DOUBLE_EQ(parsed->r(), record.r());
  EXPECT_EQ(parsed->error_code, record.error_code);
  EXPECT_EQ(parsed->attempts, 2);
  // Separators in the message are sanitized so the row stays one line.
  EXPECT_EQ(parsed->error, "non-finite loss; epoch 2;second line");
  EXPECT_EQ(CellKey(*parsed), CellKey(record));
}

TEST(GridRowTest, ParseAcceptsLegacyFourteenColumnRows) {
  Result<GridRecord> parsed =
      ParseGridRow("ETTm1,GBoost,PMC,0.1,1,0.9,0.2,1.1,0.05,0.01,0.02,10.5");
  EXPECT_FALSE(parsed.ok());  // Too few fields is still malformed.

  parsed = ParseGridRow(
      "ETTm1,GBoost,PMC,0.1,1,0.9,0.2,1.1,0.05,0.01,0.02,10.5,3,7");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->error_code, 0);
  EXPECT_EQ(parsed->attempts, 1);
  EXPECT_TRUE(parsed->error.empty());
}

TEST(CheckpointTest, WriterProducesLoadableCompleteCheckpoint) {
  const std::string path = TempPath("ckpt_roundtrip.csv");
  std::remove(path.c_str());

  GridRecord a;
  a.dataset = "ETTm1";
  a.model = "GBoost";
  a.compressor = "NONE";
  a.seed = 1;
  a.metrics[kMetricNrmse] = 0.5;
  GridRecord b = a;
  b.compressor = "PMC";
  b.error_bound = 0.2;
  b.error_code = static_cast<int32_t>(StatusCode::kInternal);
  b.attempts = 2;
  b.error = "injected";

  {
    GridCheckpointWriter writer;
    ASSERT_TRUE(writer.Open(path, 0xDEADBEEF, {}).ok());
    ASSERT_TRUE(writer.Append(a).ok());
    ASSERT_TRUE(writer.Append(b).ok());
    ASSERT_TRUE(writer.MarkComplete().ok());
  }

  Result<GridCheckpoint> loaded = LoadGridCheckpoint(path, 0xDEADBEEF);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->complete);
  EXPECT_TRUE(loaded->compatible);
  EXPECT_FALSE(loaded->legacy);
  ASSERT_EQ(loaded->records.size(), 2u);
  ExpectSameRecord(loaded->records[0], a);
  ExpectSameRecord(loaded->records[1], b);

  // A different options hash marks the checkpoint incompatible.
  Result<GridCheckpoint> other = LoadGridCheckpoint(path, 0xDEADBEE0);
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->compatible);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TornRowIsDroppedAndMarksIncomplete) {
  const std::string path = TempPath("ckpt_torn.csv");
  std::remove(path.c_str());

  GridRecord a;
  a.dataset = "ETTm1";
  a.model = "GBoost";
  a.compressor = "NONE";
  a.seed = 1;
  GridRecord b = a;
  b.compressor = "PMC";
  b.error_bound = 0.2;
  {
    GridCheckpointWriter writer;
    ASSERT_TRUE(writer.Open(path, 1, {}).ok());
    ASSERT_TRUE(writer.Append(a).ok());
    ASSERT_TRUE(writer.Append(b).ok());
  }

  // Simulate a crash mid-write: chop the tail of the last row.
  std::string contents = ReadFileOrDie(path);
  WriteFileOrDie(path, contents.substr(0, contents.size() - 9));

  Result<GridCheckpoint> loaded = LoadGridCheckpoint(path, 1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->complete);
  ASSERT_EQ(loaded->records.size(), 1u);
  ExpectSameRecord(loaded->records[0], a);
  std::remove(path.c_str());
}

TEST(CheckpointTest, CorruptedCrcDropsRowAndStopsSalvage) {
  const std::string path = TempPath("ckpt_crc.csv");
  std::remove(path.c_str());

  GridRecord a;
  a.dataset = "ETTm1";
  a.model = "GBoost";
  a.compressor = "NONE";
  a.seed = 1;
  {
    GridCheckpointWriter writer;
    ASSERT_TRUE(writer.Open(path, 1, {}).ok());
    ASSERT_TRUE(writer.Append(a).ok());
    ASSERT_TRUE(writer.MarkComplete().ok());
  }

  // Flip one payload byte; the row CRC no longer matches, so the row (and
  // the footer after it) is discarded and the checkpoint reads as partial.
  std::string contents = ReadFileOrDie(path);
  const size_t pos = contents.find("GBoost");
  ASSERT_NE(pos, std::string::npos);
  contents[pos] = 'X';
  WriteFileOrDie(path, contents);

  Result<GridCheckpoint> loaded = LoadGridCheckpoint(path, 1);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->complete);
  EXPECT_TRUE(loaded->records.empty());
  std::remove(path.c_str());
}

TEST(CheckpointTest, LegacyPlainCsvLoadsAsCompleteCheckpoint) {
  const std::string path = TempPath("ckpt_legacy.csv");
  std::remove(path.c_str());

  GridRecord a;
  a.dataset = "ETTm1";
  a.model = "GBoost";
  a.compressor = "PMC";
  a.error_bound = 0.1;
  a.seed = 1;
  a.metrics[kMetricNrmse] = 0.4;
  ASSERT_TRUE(SaveGridCsv({a}, path).ok());

  Result<GridCheckpoint> loaded = LoadGridCheckpoint(path, 123);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->legacy);
  EXPECT_TRUE(loaded->complete);
  EXPECT_TRUE(loaded->compatible);
  ASSERT_EQ(loaded->records.size(), 1u);
  ExpectSameRecord(loaded->records[0], a);
  std::remove(path.c_str());
}

// Schema versioning: a v1 checkpoint (pinned four metric columns, no
// "metrics=" manifest field) must resume cleanly for a pinned-four sweep and
// be rejected with a clear reason for any other metric set — never silently
// misparsed.
TEST(CheckpointTest, V1CheckpointResumesPinnedAndRejectsExtraMetrics) {
  const std::string path = TempPath("ckpt_v1_compat.csv");
  std::remove(path.c_str());

  // Hand-written v1 file: v1 manifest, header, one CRC-framed 17-field row.
  const std::string row =
      "ETTm1,GBoost,PMC,0.10000000000000001,1,0.9,0.25,1.5,0.07,-0.02,0.01,"
      "0,11.25,3,0,1,";
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x",
                zip::ComputeCrc32(reinterpret_cast<const uint8_t*>(row.data()),
                                  row.size()));
  WriteFileOrDie(path,
                 "#lossyts-grid-checkpoint v1 options=0000002a\n"
                 "dataset,model,compressor,error_bound,seed,r,rse,rmse,nrmse,"
                 "tfe,te_nrmse,te_rmse,compression_ratio,segment_count,"
                 "error_code,attempts,error\n" +
                     std::string(crc) + ',' + row + "\n#complete\n");

  Result<GridCheckpoint> pinned = LoadGridCheckpoint(path, 0x2a);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_TRUE(pinned->compatible);
  EXPECT_TRUE(pinned->complete);
  ASSERT_EQ(pinned->records.size(), 1u);
  ASSERT_EQ(pinned->records[0].metrics.size(), 4u);
  EXPECT_DOUBLE_EQ(pinned->records[0].r(), 0.9);
  EXPECT_DOUBLE_EQ(pinned->records[0].nrmse(), 0.07);

  Result<std::vector<std::string>> extended = ResolveMetricNames({"mae"});
  ASSERT_TRUE(extended.ok()) << extended.status().ToString();
  Result<GridCheckpoint> rejected = LoadGridCheckpoint(path, 0x2a, *extended);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_FALSE(rejected->compatible);
  EXPECT_NE(rejected->reason.find("v1 checkpoint"), std::string::npos)
      << rejected->reason;
  EXPECT_TRUE(rejected->records.empty());
  std::remove(path.c_str());
}

TEST(CheckpointTest, V2RoundTripsExtraMetricsAndRejectsMismatchedList) {
  const std::string path = TempPath("ckpt_v2_metrics.csv");
  std::remove(path.c_str());

  Result<std::vector<std::string>> names = ResolveMetricNames({"mae", "mape"});
  ASSERT_TRUE(names.ok()) << names.status().ToString();
  ASSERT_EQ(names->size(), 6u);

  GridRecord a;
  a.dataset = "ETTm1";
  a.model = "GBoost";
  a.compressor = "PMC";
  a.error_bound = 0.1;
  a.seed = 1;
  a.metrics = {0.9, 0.25, 1.5, 0.07, 1.25, 0.033};
  {
    GridCheckpointWriter writer;
    ASSERT_TRUE(writer.Open(path, 0x77, {}, *names).ok());
    ASSERT_TRUE(writer.Append(a).ok());
    ASSERT_TRUE(writer.MarkComplete().ok());
  }

  Result<GridCheckpoint> loaded = LoadGridCheckpoint(path, 0x77, *names);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->compatible);
  EXPECT_TRUE(loaded->complete);
  ASSERT_EQ(loaded->records.size(), 1u);
  ExpectSameRecord(loaded->records[0], a);

  // A sweep asking for a different metric list is told exactly what the
  // checkpoint holds versus what it needs.
  Result<GridCheckpoint> mismatch = LoadGridCheckpoint(path, 0x77);
  ASSERT_TRUE(mismatch.ok()) << mismatch.status().ToString();
  EXPECT_FALSE(mismatch->compatible);
  EXPECT_NE(mismatch->reason.find("checkpoint computes metrics"),
            std::string::npos)
      << mismatch->reason;
  std::remove(path.c_str());
}

TEST(GridOptionsHashTest, ExtraMetricsChangeHashPinnedSpellingDoesNot) {
  const uint32_t base = GridOptionsHash(TinyGrid());

  // Spelling out the pinned four is the same sweep as the default.
  GridOptions pinned = TinyGrid();
  pinned.metrics = {"r", "rse", "rmse", "nrmse"};
  EXPECT_EQ(base, GridOptionsHash(pinned));

  GridOptions extended = TinyGrid();
  extended.metrics = {"mae"};
  EXPECT_NE(base, GridOptionsHash(extended));
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  Result<GridCheckpoint> loaded =
      LoadGridCheckpoint(TempPath("ckpt_missing_nope.csv"), 1);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// The headline acceptance test: kill a sweep mid-row, reload, resume, and
// require the final records to be byte-for-byte identical to a sweep that
// was never interrupted.
TEST(CheckpointTest, KillAndResumeMatchesUninterruptedRun) {
  const GridOptions options = TinyGrid();
  const std::string path = TempPath("ckpt_resume.csv");
  std::remove(path.c_str());

  Result<std::vector<GridRecord>> uninterrupted = RunGrid(options);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().ToString();
  ASSERT_EQ(uninterrupted->size(), 6u);

  Result<std::vector<GridRecord>> first = LoadOrRunGrid(options, path);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->size(), 6u);

  // Tear the checkpoint: drop the completion footer and the tail of the
  // last row, as if the process died mid-write.
  std::string contents = ReadFileOrDie(path);
  const size_t footer = contents.find("#complete");
  ASSERT_NE(footer, std::string::npos);
  ASSERT_GT(footer, 12u);
  WriteFileOrDie(path, contents.substr(0, footer - 12));

  const uint32_t hash = GridOptionsHash(options);
  Result<GridCheckpoint> torn = LoadGridCheckpoint(path, hash);
  ASSERT_TRUE(torn.ok()) << torn.status().ToString();
  EXPECT_FALSE(torn->complete);
  EXPECT_TRUE(torn->compatible);
  ASSERT_GE(torn->records.size(), 1u);
  ASSERT_LT(torn->records.size(), 6u);

  // Resume: salvaged rows are kept verbatim, the rest recomputed.
  Result<std::vector<GridRecord>> resumed = LoadOrRunGrid(options, path);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed->size(), uninterrupted->size());
  for (size_t i = 0; i < resumed->size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    ExpectSameRecord((*resumed)[i], (*uninterrupted)[i]);
  }

  // The repaired checkpoint is complete again: loading it back is a pure
  // cache hit with identical records.
  Result<GridCheckpoint> repaired = LoadGridCheckpoint(path, hash);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired->complete);
  ASSERT_EQ(repaired->records.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    ExpectSameRecord(repaired->records[i], (*uninterrupted)[i]);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lossyts::eval
