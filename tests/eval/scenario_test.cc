#include "eval/scenario.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/split.h"
#include "forecast/registry.h"

namespace lossyts::eval {
namespace {

constexpr double kPi = 3.14159265358979323846;

TimeSeries SineSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = 10.0 +
           3.0 * std::sin(2.0 * kPi * static_cast<double>(i) / 24.0) +
           0.2 * rng.Normal();
  }
  return TimeSeries(0, 3600, std::move(v));
}

forecast::ForecastConfig SmallConfig() {
  forecast::ForecastConfig config;
  config.input_length = 48;
  config.horizon = 12;
  config.season_length = 24;
  config.max_epochs = 4;
  config.max_train_windows = 64;
  return config;
}

TEST(TfeTest, Definition9Semantics) {
  EXPECT_NEAR(Tfe(0.11, 0.10), 0.10, 1e-9);
  EXPECT_LT(Tfe(0.09, 0.10), 0.0);  // Improvement is negative.
  EXPECT_DOUBLE_EQ(Tfe(0.10, 0.10), 0.0);
  EXPECT_DOUBLE_EQ(Tfe(0.5, 0.0), 0.0);  // Guarded division.
}

TEST(ScenarioTest, BaselineEvaluationProducesSaneMetrics) {
  TimeSeries series = SineSeries(900, 1);
  Result<TrainValTest> split = SplitSeries(series);
  ASSERT_TRUE(split.ok());
  forecast::ForecastConfig config = SmallConfig();
  config.max_epochs = 10;
  config.max_train_windows = 128;
  Result<std::unique_ptr<forecast::Forecaster>> model =
      forecast::MakeForecaster("DLinear", config);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(split->train, split->val).ok());

  Result<std::vector<double>> metrics = EvaluateOnTest(
      **model, split->test, nullptr, config.input_length, config.horizon);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  ASSERT_EQ(metrics->size(), 4u);
  EXPECT_GT((*metrics)[kMetricR], 0.5);
  EXPECT_GT((*metrics)[kMetricNrmse], 0.0);
  EXPECT_LT((*metrics)[kMetricNrmse], 1.0);
}

TEST(ScenarioTest, IdentityTransformMatchesBaseline) {
  TimeSeries series = SineSeries(600, 2);
  Result<TrainValTest> split = SplitSeries(series);
  ASSERT_TRUE(split.ok());
  forecast::ForecastConfig config = SmallConfig();
  Result<std::unique_ptr<forecast::Forecaster>> model =
      forecast::MakeForecaster("GBoost", config);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(split->train, split->val).ok());

  Result<std::vector<double>> baseline = EvaluateOnTest(
      **model, split->test, nullptr, config.input_length, config.horizon);
  TimeSeries copy = split->test;
  Result<std::vector<double>> transformed = EvaluateOnTest(
      **model, split->test, &copy, config.input_length, config.horizon);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(transformed.ok());
  EXPECT_DOUBLE_EQ((*baseline)[kMetricNrmse], (*transformed)[kMetricNrmse]);
}

TEST(ScenarioTest, HeavyDistortionDegradesAccuracy) {
  TimeSeries series = SineSeries(600, 3);
  Result<TrainValTest> split = SplitSeries(series);
  ASSERT_TRUE(split.ok());
  forecast::ForecastConfig config = SmallConfig();
  Result<std::unique_ptr<forecast::Forecaster>> model =
      forecast::MakeForecaster("GBoost", config);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(split->train, split->val).ok());

  Result<std::vector<double>> baseline = EvaluateOnTest(
      **model, split->test, nullptr, config.input_length, config.horizon);
  ASSERT_TRUE(baseline.ok());

  // Replace inputs with a wrecked copy (heavy quantization).
  TimeSeries wrecked = split->test;
  for (double& v : wrecked.mutable_values()) {
    v = std::round(v / 8.0) * 8.0;
  }
  Result<std::vector<double>> transformed = EvaluateOnTest(
      **model, split->test, &wrecked, config.input_length, config.horizon);
  ASSERT_TRUE(transformed.ok());
  EXPECT_GT((*transformed)[kMetricNrmse], (*baseline)[kMetricNrmse]);
  EXPECT_GT(Tfe((*transformed)[kMetricNrmse], (*baseline)[kMetricNrmse]),
            0.0);
}

TEST(ScenarioTest, MismatchedTransformedLengthFails) {
  TimeSeries series = SineSeries(600, 4);
  Result<TrainValTest> split = SplitSeries(series);
  ASSERT_TRUE(split.ok());
  forecast::ForecastConfig config = SmallConfig();
  Result<std::unique_ptr<forecast::Forecaster>> model =
      forecast::MakeForecaster("GBoost", config);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(split->train, split->val).ok());
  Result<TimeSeries> shorter = split->test.Slice(0, split->test.size() - 5);
  ASSERT_TRUE(shorter.ok());
  EXPECT_FALSE(EvaluateOnTest(**model, split->test, &*shorter,
                              config.input_length, config.horizon)
                   .ok());
}

TEST(ScenarioTest, TooShortTestFails) {
  TimeSeries series = SineSeries(600, 5);
  Result<TrainValTest> split = SplitSeries(series);
  ASSERT_TRUE(split.ok());
  forecast::ForecastConfig config = SmallConfig();
  Result<std::unique_ptr<forecast::Forecaster>> model =
      forecast::MakeForecaster("GBoost", config);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(split->train, split->val).ok());
  Result<TimeSeries> tiny = split->test.Slice(0, 30);
  ASSERT_TRUE(tiny.ok());
  EXPECT_FALSE(EvaluateOnTest(**model, *tiny, nullptr, config.input_length,
                              config.horizon)
                   .ok());
}

TEST(ScenarioTest, RetrainOnDecompressedRuns) {
  TimeSeries series = SineSeries(700, 6);
  Result<TrainValTest> split = SplitSeries(series);
  ASSERT_TRUE(split.ok());
  forecast::ForecastConfig config = SmallConfig();
  Result<std::vector<double>> metrics = EvaluateRetrainOnDecompressed(
      "DLinear", config, split->train, split->val, split->test, "PMC", 0.1);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_GT((*metrics)[kMetricNrmse], 0.0);
  EXPECT_TRUE(std::isfinite((*metrics)[kMetricR]));
}

TEST(ScenarioTest, RetrainRejectsUnknownCompressor) {
  TimeSeries series = SineSeries(700, 7);
  Result<TrainValTest> split = SplitSeries(series);
  ASSERT_TRUE(split.ok());
  EXPECT_FALSE(EvaluateRetrainOnDecompressed(
                   "DLinear", SmallConfig(), split->train, split->val,
                   split->test, "ZSTD", 0.1)
                   .ok());
}

}  // namespace
}  // namespace lossyts::eval
