// Tests of the numerics conformance harness: the full run is clean, runs
// are deterministic and reproducible from the printed coordinates, unknown
// component names fail loudly, and — the meta-check — a deliberately
// corrupted backward pass is actually caught by the gradient oracle.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/failpoint.h"
#include "numcheck/gradcheck.h"
#include "numcheck/harness.h"
#include "numcheck/models.h"
#include "numcheck/oracles.h"

namespace lossyts::numcheck {
namespace {

// CI runs a small grid by default; set LOSSYTS_NUMCHECK_ITERS for a soak.
int IterCount() {
  const char* env = std::getenv("LOSSYTS_NUMCHECK_ITERS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 2;
}

class NumCheckTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// The tentpole assertion: every gradient, analysis, and determinism oracle
// is clean over the full component grid.

TEST_F(NumCheckTest, FullRunIsClean) {
  NumCheckOptions options;
  options.iters = IterCount();
  Result<NumCheckSummary> summary = RunNumCheck(options);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_GT(summary->cases, 0u);
  EXPECT_GT(summary->checks, summary->cases);
  for (const NumCheckFailure& f : summary->failures) {
    ADD_FAILURE() << FormatFailure(f);
  }
}

TEST_F(NumCheckTest, RunIsDeterministic) {
  NumCheckOptions options;
  options.iters = 1;
  options.ops = {"Softmax", "GruCell"};
  options.models = {"none"};
  options.oracles = {"ols"};
  Result<NumCheckSummary> a = RunNumCheck(options);
  options.jobs = 1;  // Same identity-derived seeds regardless of jobs.
  Result<NumCheckSummary> b = RunNumCheck(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cases, b->cases);
  EXPECT_EQ(a->checks, b->checks);
  EXPECT_EQ(a->failures.size(), b->failures.size());
}

TEST_F(NumCheckTest, RejectsUnknownComponents) {
  NumCheckOptions options;
  options.ops = {"NoSuchOp"};
  Result<NumCheckSummary> summary = RunNumCheck(options);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kNotFound);

  options = NumCheckOptions();
  options.models = {"NoSuchModel"};
  EXPECT_FALSE(RunNumCheck(options).ok());

  options = NumCheckOptions();
  options.oracles = {"NoSuchOracle"};
  EXPECT_FALSE(RunNumCheck(options).ok());
}

TEST_F(NumCheckTest, RejectsNonPositiveIters) {
  NumCheckOptions options;
  options.iters = 0;
  EXPECT_FALSE(RunNumCheck(options).ok());
}

TEST_F(NumCheckTest, NoneSelectorIsolatesOneCategory) {
  NumCheckOptions options;
  options.iters = 3;
  options.ops = {"none"};
  options.models = {"none"};
  options.oracles = {"ols"};
  Result<NumCheckSummary> summary = RunNumCheck(options);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->cases, 3u);  // Exactly oracle:ols x iters.
  EXPECT_TRUE(summary->failures.empty());
}

TEST_F(NumCheckTest, FormatFailureCarriesReproductionCoordinates) {
  NumCheckFailure f;
  f.component = "op:Softmax";
  f.case_index = 4;
  f.seed = 99;
  f.check = "grad/input";
  f.detail = "mismatch (1,2): analytic=0.5 numeric=0.25";
  const std::string line = FormatFailure(f);
  EXPECT_NE(line.find("op:Softmax#4"), std::string::npos) << line;
  EXPECT_NE(line.find("seed=99"), std::string::npos) << line;
  EXPECT_NE(line.find("grad/input"), std::string::npos) << line;
  EXPECT_NE(line.find("analytic=0.5"), std::string::npos) << line;
}

TEST_F(NumCheckTest, ComponentNameListsAreNonEmpty) {
  EXPECT_FALSE(GradCheckOpNames().empty());
  EXPECT_FALSE(GradCheckModelNames().empty());
  EXPECT_FALSE(AnalysisOracleNames().empty());
}

// ---------------------------------------------------------------------------
// Meta-check: the oracle must actually catch a wrong backward pass. The
// "autodiff_backward_perturb" failpoint corrupts MatMul's dA, which must
// surface as a gradient mismatch with full reproduction coordinates.

TEST_F(NumCheckTest, SeededFaultInBackwardIsCaught) {
  FailPoints::Arm("autodiff_backward_perturb", 1, 1u << 30);
  NumCheckOptions options;
  options.iters = 1;
  options.ops = {"MatMul"};
  options.models = {"none"};
  options.oracles = {"none"};
  Result<NumCheckSummary> summary = RunNumCheck(options);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  ASSERT_FALSE(summary->failures.empty())
      << "a corrupted backward pass went undetected";
  const NumCheckFailure& f = summary->failures[0];
  EXPECT_EQ(f.component, "op:MatMul");
  EXPECT_EQ(f.check, "grad/a");
  EXPECT_NE(f.detail.find("(0,0)"), std::string::npos) << f.detail;
}

TEST_F(NumCheckTest, SameRunIsCleanOnceDisarmed) {
  NumCheckOptions options;
  options.iters = 1;
  options.ops = {"MatMul"};
  options.models = {"none"};
  options.oracles = {"none"};
  Result<NumCheckSummary> summary = RunNumCheck(options);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->failures.empty());
}

// ---------------------------------------------------------------------------
// Per-component entry points, as used to reproduce a printed failure.

TEST_F(NumCheckTest, OpEntryPointMatchesHarnessSeeding) {
  // The harness prints the per-case seed; calling the op runner with it must
  // regenerate the identical case (same check count, still clean).
  Result<CheckReport> direct = RunOpGradChecks("GruCell", 12345);
  ASSERT_TRUE(direct.ok());
  EXPECT_GT(direct->checks, 0u);
  EXPECT_TRUE(direct->failures.empty());
  EXPECT_FALSE(RunOpGradChecks("nope", 1).ok());
  EXPECT_FALSE(RunModelGradChecks("nope", 1).ok());
  EXPECT_FALSE(RunAnalysisOracle("nope", 1).ok());
}

// Regression (numcheck bug batch): NBeats' final block used to own a
// backcast projection that no gradient could ever reach — the full-sweep
// model check now proves every registered parameter is trainable.
TEST_F(NumCheckTest, NBeatsParametersAreAllReachable) {
  Result<CheckReport> report = RunModelGradChecks("NBeats", 7);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const CheckFailure& f : report->failures) {
    ADD_FAILURE() << f.check << ": " << f.detail;
  }
}

}  // namespace
}  // namespace lossyts::numcheck
