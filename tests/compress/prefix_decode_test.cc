// Early-stop prefix decoding for the XOR codecs: DecompressPrefix(blob, n)
// must return exactly the first n points of the full decode, bit for bit —
// the contract the store's point reads rely on (src/compress/gorilla.cc,
// src/compress/chimp.cc).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "compress/chimp.h"
#include "compress/gorilla.h"
#include "core/rng.h"

namespace lossyts::compress {
namespace {

TimeSeries MakeSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 1000.0;
  for (auto& val : v) {
    x += rng.Normal();
    val = x;
  }
  return TimeSeries(500, 30, std::move(v));
}

template <typename Codec>
void CheckPrefixEquivalence(const TimeSeries& series) {
  Codec codec;
  Result<std::vector<uint8_t>> blob = codec.Compress(series, 0.0);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  Result<TimeSeries> full = codec.Decompress(*blob);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->size(), series.size());
  for (size_t n : {size_t{1}, size_t{2}, series.size() / 2,
                   series.size() - 1, series.size()}) {
    if (n == 0 || n > series.size()) continue;
    Result<TimeSeries> prefix = codec.DecompressPrefix(*blob, n);
    ASSERT_TRUE(prefix.ok()) << "n=" << n;
    ASSERT_EQ(prefix->size(), n);
    EXPECT_EQ(prefix->start_timestamp(), full->start_timestamp());
    EXPECT_EQ(prefix->interval_seconds(), full->interval_seconds());
    for (size_t i = 0; i < n; ++i) {
      // Bit-identical, NaN included.
      const double a = full->values()[i];
      const double b = prefix->values()[i];
      EXPECT_EQ(0, std::memcmp(&a, &b, sizeof(double))) << "n=" << n
                                                        << " i=" << i;
    }
  }
  // Asking past the end clamps to the full decode.
  Result<TimeSeries> over =
      codec.DecompressPrefix(*blob, series.size() + 100);
  ASSERT_TRUE(over.ok());
  EXPECT_EQ(over->size(), series.size());
  // Zero points is an argument error, not an empty series.
  EXPECT_EQ(codec.DecompressPrefix(*blob, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PrefixDecodeTest, GorillaPrefixMatchesFullDecode) {
  CheckPrefixEquivalence<GorillaCompressor>(MakeSeries(1000, 1));
}

TEST(PrefixDecodeTest, ChimpPrefixMatchesFullDecode) {
  CheckPrefixEquivalence<ChimpCompressor>(MakeSeries(1000, 2));
}

TEST(PrefixDecodeTest, PrefixHandlesSpecialValues) {
  std::vector<double> v = {0.0, -0.0, 1.0, 1.0, 1.0,
                           std::nan(""), std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(),
                           -1e308};
  const TimeSeries series(0, 60, std::move(v));
  CheckPrefixEquivalence<GorillaCompressor>(series);
  CheckPrefixEquivalence<ChimpCompressor>(series);
}

TEST(PrefixDecodeTest, SinglePointSeries) {
  const TimeSeries series(0, 60, {3.25});
  CheckPrefixEquivalence<GorillaCompressor>(series);
  CheckPrefixEquivalence<ChimpCompressor>(series);
}

TEST(PrefixDecodeTest, PrefixRejectsCorruptBlobs) {
  GorillaCompressor codec;
  Result<std::vector<uint8_t>> blob =
      codec.Compress(MakeSeries(100, 3), 0.0);
  ASSERT_TRUE(blob.ok());
  std::vector<uint8_t> truncated(blob->begin(), blob->begin() + 5);
  EXPECT_FALSE(codec.DecompressPrefix(truncated, 10).ok());
}

}  // namespace
}  // namespace lossyts::compress
