#include "compress/sz.h"

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "compress/serde.h"
#include "core/metrics.h"
#include "core/rng.h"

namespace lossyts::compress {
namespace {

TimeSeries NoisySine(size_t n, uint64_t seed, double base = 20.0) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = base + 5.0 * std::sin(static_cast<double>(i) * 0.05) +
           0.2 * rng.Normal();
  }
  return TimeSeries(0, 60, std::move(v));
}

TEST(SzTest, RoundTripPreservesMetadata) {
  TimeSeries ts = NoisySine(500, 1);
  SzCompressor sz;
  Result<std::vector<uint8_t>> blob = sz.Compress(ts, 0.05);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = sz.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), ts.size());
  EXPECT_EQ(out->start_timestamp(), ts.start_timestamp());
  EXPECT_EQ(out->interval_seconds(), ts.interval_seconds());
}

TEST(SzTest, RespectsRelativeErrorBound) {
  SzCompressor sz;
  for (double eb : {0.01, 0.05, 0.1, 0.3, 0.8}) {
    TimeSeries ts = NoisySine(2000, 7);
    Result<std::vector<uint8_t>> blob = sz.Compress(ts, eb);
    ASSERT_TRUE(blob.ok());
    Result<TimeSeries> out = sz.Decompress(*blob);
    ASSERT_TRUE(out.ok());
    Result<double> max_rel = MaxRelError(ts.values(), out->values());
    ASSERT_TRUE(max_rel.ok());
    EXPECT_LE(*max_rel, eb * (1.0 + 1e-6)) << "eb=" << eb;
  }
}

TEST(SzTest, ExactZerosAreReconstructedExactly) {
  std::vector<double> v(400, 0.0);
  for (size_t i = 100; i < 300; ++i) {
    v[i] = 5.0 + std::sin(static_cast<double>(i) * 0.1);
  }
  TimeSeries ts(0, 600, std::move(v));
  SzCompressor sz;
  Result<std::vector<uint8_t>> blob = sz.Compress(ts, 0.1);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = sz.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ((*out)[i], 0.0);
  for (size_t i = 300; i < 400; ++i) EXPECT_EQ((*out)[i], 0.0);
}

TEST(SzTest, NegativeValuesKeepSign) {
  Rng rng(5);
  std::vector<double> v(1000);
  for (auto& x : v) x = -30.0 + rng.Normal();
  TimeSeries ts(0, 60, std::move(v));
  SzCompressor sz;
  Result<std::vector<uint8_t>> blob = sz.Compress(ts, 0.05);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = sz.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < ts.size(); ++i) {
    EXPECT_LT((*out)[i], 0.0);
  }
  Result<double> max_rel = MaxRelError(ts.values(), out->values());
  ASSERT_TRUE(max_rel.ok());
  EXPECT_LE(*max_rel, 0.05 * (1.0 + 1e-6));
}

TEST(SzTest, MixedSignSeriesRespectsBound) {
  Rng rng(6);
  std::vector<double> v(2000);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 10.0 * std::sin(static_cast<double>(i) * 0.02) + 0.1 * rng.Normal();
  }
  TimeSeries ts(0, 60, std::move(v));
  SzCompressor sz;
  Result<std::vector<uint8_t>> blob = sz.Compress(ts, 0.1);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = sz.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  Result<double> max_rel = MaxRelError(ts.values(), out->values());
  ASSERT_TRUE(max_rel.ok());
  EXPECT_LE(*max_rel, 0.1 * (1.0 + 1e-6));
}

TEST(SzTest, QuantizationCreatesConstantRuns) {
  // The paper's Figure 1 observation: SZ output looks piecewise constant.
  TimeSeries ts = NoisySine(2000, 11);
  SzCompressor sz;
  Result<std::vector<uint8_t>> blob = sz.Compress(ts, 0.1);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = sz.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  size_t runs = 1;
  for (size_t i = 1; i < out->size(); ++i) {
    if ((*out)[i] != (*out)[i - 1]) ++runs;
  }
  EXPECT_LT(runs, ts.size());
}

TEST(SzTest, HigherBoundGivesSmallerOutput) {
  TimeSeries ts = NoisySine(4000, 9);
  SzCompressor sz;
  Result<std::vector<uint8_t>> small_eb = sz.Compress(ts, 0.01);
  Result<std::vector<uint8_t>> large_eb = sz.Compress(ts, 0.5);
  ASSERT_TRUE(small_eb.ok());
  ASSERT_TRUE(large_eb.ok());
  EXPECT_LE(large_eb->size(), small_eb->size());
}

TEST(SzTest, TinyValuesStoredWithinBound) {
  std::vector<double> v = {1e-8, 2e-8, -3e-8, 1e-300, -1e-300, 4.0};
  TimeSeries ts(0, 60, std::move(v));
  SzCompressor sz;
  Result<std::vector<uint8_t>> blob = sz.Compress(ts, 0.1);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = sz.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  Result<double> max_rel = MaxRelError(ts.values(), out->values());
  ASSERT_TRUE(max_rel.ok());
  EXPECT_LE(*max_rel, 0.1 * (1.0 + 1e-6));
}

TEST(SzTest, InvalidErrorBoundFails) {
  TimeSeries ts = NoisySine(10, 1);
  SzCompressor sz;
  EXPECT_FALSE(sz.Compress(ts, 0.0).ok());
  EXPECT_FALSE(sz.Compress(ts, 1.0).ok());
}

TEST(SzTest, EmptySeriesFails) {
  SzCompressor sz;
  EXPECT_FALSE(sz.Compress(TimeSeries(), 0.1).ok());
}

TEST(SzTest, DecompressRejectsCorruptedBlob) {
  TimeSeries ts = NoisySine(500, 1);
  SzCompressor sz;
  Result<std::vector<uint8_t>> blob = sz.Compress(ts, 0.1);
  ASSERT_TRUE(blob.ok());
  std::vector<uint8_t> truncated(*blob);
  truncated.resize(truncated.size() / 3);
  EXPECT_FALSE(sz.Decompress(truncated).ok());
  std::vector<uint8_t> wrong_alg(*blob);
  wrong_alg[0] = 1;
  EXPECT_FALSE(sz.Decompress(wrong_alg).ok());
}

TEST(SzTest, CustomBlockSizeWorks) {
  SzCompressor::Options options;
  options.block_size = 32;
  SzCompressor sz(options);
  TimeSeries ts = NoisySine(777, 2);
  Result<std::vector<uint8_t>> blob = sz.Compress(ts, 0.05);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = sz.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  Result<double> max_rel = MaxRelError(ts.values(), out->values());
  ASSERT_TRUE(max_rel.ok());
  EXPECT_LE(*max_rel, 0.05 * (1.0 + 1e-6));
}

class SzPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(SzPropertyTest, BoundHoldsOnRandomWalks) {
  const double eb = GetParam();
  SzCompressor sz;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed + 200);
    std::vector<double> v(1500);
    double x = 100.0;
    for (auto& val : v) {
      x += rng.Normal();
      val = x;
    }
    TimeSeries ts(0, 1, std::move(v));
    Result<std::vector<uint8_t>> blob = sz.Compress(ts, eb);
    ASSERT_TRUE(blob.ok());
    Result<TimeSeries> out = sz.Decompress(*blob);
    ASSERT_TRUE(out.ok());
    Result<double> max_rel = MaxRelError(ts.values(), out->values());
    ASSERT_TRUE(max_rel.ok());
    EXPECT_LE(*max_rel, eb * (1.0 + 1e-6)) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, SzPropertyTest,
                         ::testing::Values(0.01, 0.03, 0.05, 0.1, 0.2, 0.5));

// Regression (conformance harness, "steep" family): ε·min|v| past FLT_MAX
// used to cast to a +inf block bound, and every "predictable" point then
// reconstructed as pred + 2·inf·0 = NaN.
TEST(SzTest, NearMaxMagnitudesStayFiniteAndBounded) {
  std::vector<double> v;
  for (int i = 0; i < 8; ++i) {
    v.push_back((i % 2 == 0 ? 1.0 : -1.0) * 1.5e308);
  }
  TimeSeries ts(0, 60, std::move(v));
  SzCompressor sz;
  for (const double eb : {0.2, 0.8}) {
    Result<std::vector<uint8_t>> blob = sz.Compress(ts, eb);
    ASSERT_TRUE(blob.ok()) << "eb=" << eb;
    Result<TimeSeries> out = sz.Decompress(*blob);
    ASSERT_TRUE(out.ok()) << "eb=" << eb;
    ASSERT_EQ(out->size(), ts.size());
    for (size_t i = 0; i < ts.size(); ++i) {
      ASSERT_TRUE(std::isfinite((*out)[i])) << "eb=" << eb << " i=" << i;
      const Allowance a = RelativeAllowance(ts[i], eb);
      EXPECT_GE((*out)[i], a.lo) << "eb=" << eb << " i=" << i;
      EXPECT_LE((*out)[i], a.hi) << "eb=" << eb << " i=" << i;
    }
  }
}

// Regression (conformance harness, "tiny" family): for subnormal magnitudes
// ε·min|v| underflows the f32 block bound to zero; every point must then be
// stored verbatim, making the round trip exact.
TEST(SzTest, SubnormalMagnitudesRoundTripExactly) {
  TimeSeries ts(0, 60, {1e-320, -3e-321, 5e-324, -1e-310, 2e-315});
  SzCompressor sz;
  Result<std::vector<uint8_t>> blob = sz.Compress(ts, 0.5);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = sz.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), ts.size());
  for (size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ((*out)[i], ts[i]) << "i=" << i;
  }
}

// Builds a minimal single-point raw-mode (mode byte 1) SZ blob carrying the
// given symbol, with one Lorenzo block of bound 0.5 and no unpredictable
// values. Exercises the decoder path the encoder reaches only when Huffman
// construction fails.
std::vector<uint8_t> RawModeBlob(uint32_t symbol) {
  ByteWriter w;
  w.PutU8(3);   // AlgorithmId::kSz.
  w.PutI32(0);  // First timestamp.
  w.PutU16(60);
  w.PutU32(1);  // num_points.
  w.PutU32(1);  // Non-zero count.
  w.PutU8(1);   // Class: non-zero.
  w.PutU32(1);  // One block model.
  w.PutU8(0);   // Lorenzo predictor.
  const float bound = 0.5f;
  uint32_t bound_bits;
  std::memcpy(&bound_bits, &bound, sizeof(bound_bits));
  w.PutU32(bound_bits);
  w.PutU8(1);  // Raw symbol mode.
  w.PutU32(symbol);
  w.PutU32(0);  // No unpredictable values.
  return w.Finish();
}

TEST(SzTest, RawModeBlobDecodes) {
  // Default quant_radius is 32768, so symbol radius+1 carries code +1:
  // value = prev_rec(0) + 2·0.5·1 = 1.
  SzCompressor sz;
  Result<TimeSeries> out = sz.Decompress(RawModeBlob(32769));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_DOUBLE_EQ((*out)[0], 1.0);
}

// Regression: raw symbols were cast to int *before* the range check, so a
// value >= 2^31 wrapped negative, slipped past `sym > unpredictable_symbol`,
// and indexed the reconstruction with garbage.
TEST(SzTest, RawSymbolPastIntRangeIsCorruption) {
  SzCompressor sz;
  Result<TimeSeries> out = sz.Decompress(RawModeBlob(0x80000000u));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

TEST(SzTest, RawSymbolJustPastAlphabetIsCorruption) {
  // unpredictable_symbol = 2·32768; one past it is invalid.
  SzCompressor sz;
  Result<TimeSeries> out = sz.Decompress(RawModeBlob(65537));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

TEST(SzTest, UnpredictableSymbolWithEmptyStreamIsCorruption) {
  // The symbol itself is in range but the unpredictable value stream is
  // empty; the decoder must fail cleanly instead of reading past it.
  SzCompressor sz;
  Result<TimeSeries> out = sz.Decompress(RawModeBlob(65536));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace lossyts::compress
