#include "compress/ppa.h"

#include <cmath>

#include <gtest/gtest.h>

#include "compress/pmc.h"
#include "compress/swing.h"
#include "core/metrics.h"
#include "core/rng.h"

namespace lossyts::compress {
namespace {

TimeSeries NoisySine(size_t n, uint64_t seed, double base = 20.0) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = base + 5.0 * std::sin(static_cast<double>(i) * 0.05) +
           0.2 * rng.Normal();
  }
  return TimeSeries(0, 60, std::move(v));
}

TEST(PpaTest, RoundTripPreservesMetadata) {
  TimeSeries ts = NoisySine(500, 1);
  PpaCompressor ppa;
  Result<std::vector<uint8_t>> blob = ppa.Compress(ts, 0.05);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = ppa.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), ts.size());
  EXPECT_EQ(out->start_timestamp(), ts.start_timestamp());
  EXPECT_EQ(out->interval_seconds(), ts.interval_seconds());
}

TEST(PpaTest, RespectsRelativeErrorBound) {
  PpaCompressor ppa;
  for (double eb : {0.01, 0.05, 0.1, 0.3}) {
    TimeSeries ts = NoisySine(1500, 7);
    Result<std::vector<uint8_t>> blob = ppa.Compress(ts, eb);
    ASSERT_TRUE(blob.ok());
    Result<TimeSeries> out = ppa.Decompress(*blob);
    ASSERT_TRUE(out.ok());
    Result<double> max_rel = MaxRelError(ts.values(), out->values());
    ASSERT_TRUE(max_rel.ok());
    EXPECT_LE(*max_rel, eb * (1.0 + 1e-9)) << "eb=" << eb;
  }
}

TEST(PpaTest, QuadraticSeriesNeedsFewSegments) {
  // A parabola far from zero: one degree-2 segment per 2048-point cap.
  std::vector<double> v(3000);
  for (size_t i = 0; i < v.size(); ++i) {
    const double t = static_cast<double>(i) / 1000.0;
    v[i] = 100.0 + 5.0 * t + 20.0 * t * t;
  }
  TimeSeries ts(0, 60, std::move(v));
  PpaCompressor ppa;
  Result<std::vector<uint8_t>> blob = ppa.Compress(ts, 0.01);
  ASSERT_TRUE(blob.ok());
  // A handful of polynomial segments (the 2048-point cap forces at least
  // two); far below one coefficient per point.
  EXPECT_LE(blob->size(), 120u);
}

TEST(PpaTest, BeatsConstantAndLinearModelsOnCurvedData) {
  std::vector<double> v(4000);
  for (size_t i = 0; i < v.size(); ++i) {
    const double t = static_cast<double>(i) * 0.01;
    v[i] = 50.0 + 10.0 * std::sin(t * 0.2);  // Slowly curving, no noise.
  }
  TimeSeries ts(0, 60, std::move(v));
  PpaCompressor ppa;
  PmcCompressor pmc;
  SwingCompressor swing;
  Result<std::vector<uint8_t>> ppa_blob = ppa.Compress(ts, 0.01);
  Result<std::vector<uint8_t>> pmc_blob = pmc.Compress(ts, 0.01);
  Result<std::vector<uint8_t>> swing_blob = swing.Compress(ts, 0.01);
  ASSERT_TRUE(ppa_blob.ok());
  ASSERT_TRUE(pmc_blob.ok());
  ASSERT_TRUE(swing_blob.ok());
  EXPECT_LT(ppa_blob->size(), pmc_blob->size());
  EXPECT_LT(ppa_blob->size(), swing_blob->size());
}

TEST(PpaTest, HigherBoundGivesSmallerOutput) {
  TimeSeries ts = NoisySine(3000, 9);
  PpaCompressor ppa;
  Result<std::vector<uint8_t>> small_eb = ppa.Compress(ts, 0.01);
  Result<std::vector<uint8_t>> large_eb = ppa.Compress(ts, 0.3);
  ASSERT_TRUE(small_eb.ok());
  ASSERT_TRUE(large_eb.ok());
  EXPECT_LT(large_eb->size(), small_eb->size());
}

TEST(PpaTest, ExactZerosAreReconstructedExactly) {
  std::vector<double> v(300, 0.0);
  for (size_t i = 100; i < 200; ++i) v[i] = 10.0 + static_cast<double>(i);
  TimeSeries ts(0, 600, std::move(v));
  PpaCompressor ppa;
  Result<std::vector<uint8_t>> blob = ppa.Compress(ts, 0.2);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = ppa.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ((*out)[i], 0.0) << i;
  for (size_t i = 200; i < 300; ++i) EXPECT_EQ((*out)[i], 0.0) << i;
}

TEST(PpaTest, MaxDegreeZeroDegeneratesToPiecewiseConstant) {
  PpaCompressor::Options options;
  options.max_degree = 0;
  PpaCompressor ppa(options);
  TimeSeries ts = NoisySine(500, 11);
  Result<std::vector<uint8_t>> blob = ppa.Compress(ts, 0.1);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = ppa.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  Result<double> max_rel = MaxRelError(ts.values(), out->values());
  ASSERT_TRUE(max_rel.ok());
  EXPECT_LE(*max_rel, 0.1 * (1.0 + 1e-9));
}

TEST(PpaTest, InvalidErrorBoundFails) {
  PpaCompressor ppa;
  TimeSeries ts = NoisySine(10, 1);
  EXPECT_FALSE(ppa.Compress(ts, 0.0).ok());
  EXPECT_FALSE(ppa.Compress(ts, 1.5).ok());
}

TEST(PpaTest, EmptySeriesFails) {
  PpaCompressor ppa;
  EXPECT_FALSE(ppa.Compress(TimeSeries(), 0.1).ok());
}

TEST(PpaTest, DecompressRejectsCorruption) {
  PpaCompressor ppa;
  TimeSeries ts = NoisySine(200, 1);
  Result<std::vector<uint8_t>> blob = ppa.Compress(ts, 0.1);
  ASSERT_TRUE(blob.ok());
  std::vector<uint8_t> truncated(*blob);
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(ppa.Decompress(truncated).ok());
  std::vector<uint8_t> wrong(*blob);
  wrong[0] = 1;
  EXPECT_FALSE(ppa.Decompress(wrong).ok());
}

class PpaPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(PpaPropertyTest, BoundHoldsOnRandomWalks) {
  const double eb = GetParam();
  PpaCompressor ppa;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng(seed + 300);
    std::vector<double> v(1000);
    double x = 100.0;
    for (auto& val : v) {
      x += rng.Normal();
      val = x;
    }
    TimeSeries ts(0, 1, std::move(v));
    Result<std::vector<uint8_t>> blob = ppa.Compress(ts, eb);
    ASSERT_TRUE(blob.ok());
    Result<TimeSeries> out = ppa.Decompress(*blob);
    ASSERT_TRUE(out.ok());
    Result<double> max_rel = MaxRelError(ts.values(), out->values());
    ASSERT_TRUE(max_rel.ok());
    EXPECT_LE(*max_rel, eb * (1.0 + 1e-9)) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, PpaPropertyTest,
                         ::testing::Values(0.01, 0.05, 0.1, 0.3));

// Regression (conformance harness, "steep" family): fitting near-DBL_MAX
// values overflows the normal equations into NaN coefficients, and the old
// feasibility check `rec < lo || rec > hi` is all-false for NaN — the NaN
// polynomial sailed through and every point decoded as NaN.
TEST(PpaTest, NearMaxMagnitudesStayFiniteAndBounded) {
  std::vector<double> v;
  for (int i = 0; i < 12; ++i) {
    const double c = 0.1 + 0.07 * static_cast<double>(i);
    v.push_back((i % 2 == 0 ? 1.0 : -1.0) * c * 1.7976931348623157e308);
  }
  TimeSeries ts(0, 60, std::move(v));
  PpaCompressor ppa;
  for (const double eb : {0.01, 0.2, 0.8}) {
    Result<std::vector<uint8_t>> blob = ppa.Compress(ts, eb);
    ASSERT_TRUE(blob.ok()) << "eb=" << eb;
    Result<TimeSeries> out = ppa.Decompress(*blob);
    ASSERT_TRUE(out.ok()) << "eb=" << eb;
    ASSERT_EQ(out->size(), ts.size());
    for (size_t i = 0; i < ts.size(); ++i) {
      ASSERT_TRUE(std::isfinite((*out)[i])) << "eb=" << eb << " i=" << i;
      const Allowance a = RelativeAllowance(ts[i], eb);
      EXPECT_GE((*out)[i], a.lo) << "eb=" << eb << " i=" << i;
      EXPECT_LE((*out)[i], a.hi) << "eb=" << eb << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace lossyts::compress
