// Decoder robustness: every Decompress implementation (and DecompressAny)
// must reject arbitrary garbage with a clean Status — never crash, hang or
// read out of bounds. This is a light deterministic fuzz over random blobs
// and bit-flipped valid blobs.

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "compress/pipeline.h"
#include "compress/serde.h"
#include "compress/sz.h"
#include "core/rng.h"

namespace lossyts::compress {
namespace {

const std::vector<std::string>& AllCodecs() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "PMC", "SWING", "SZ", "PPA", "GORILLA", "CHIMP"};
  return names;
}

TimeSeries SampleSeries(size_t n) {
  Rng rng(5);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = 15.0 + 3.0 * std::sin(static_cast<double>(i) * 0.07) +
           0.2 * rng.Normal();
  }
  return TimeSeries(0, 60, std::move(v));
}

TEST(DecompressAnyTest, DispatchesEveryCodec) {
  TimeSeries ts = SampleSeries(600);
  for (const std::string& name : AllCodecs()) {
    Result<std::unique_ptr<Compressor>> codec = MakeCompressor(name);
    ASSERT_TRUE(codec.ok()) << name;
    Result<std::vector<uint8_t>> blob = (*codec)->Compress(ts, 0.1);
    ASSERT_TRUE(blob.ok()) << name;
    Result<TimeSeries> out = DecompressAny(*blob);
    ASSERT_TRUE(out.ok()) << name << ": " << out.status().ToString();
    EXPECT_EQ(out->size(), ts.size()) << name;
  }
}

TEST(DecompressAnyTest, RejectsEmptyAndUnknown) {
  EXPECT_FALSE(DecompressAny({}).ok());
  EXPECT_FALSE(DecompressAny({0x00, 0x01, 0x02}).ok());
  EXPECT_FALSE(DecompressAny({0xFF}).ok());
}

TEST(RobustnessTest, RandomBlobsNeverCrash) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> garbage(rng.UniformInt(400));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.UniformInt(256));
    // Must return (usually an error); must not crash or hang.
    Result<TimeSeries> out = DecompressAny(garbage);
    (void)out;
  }
  SUCCEED();
}

TEST(RobustnessTest, BitFlippedBlobsNeverCrash) {
  TimeSeries ts = SampleSeries(400);
  Rng rng(78);
  for (const std::string& name : AllCodecs()) {
    Result<std::unique_ptr<Compressor>> codec = MakeCompressor(name);
    ASSERT_TRUE(codec.ok());
    Result<std::vector<uint8_t>> blob = (*codec)->Compress(ts, 0.1);
    ASSERT_TRUE(blob.ok());
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<uint8_t> mutated = *blob;
      // Flip 1-4 random bits outside the algorithm-id byte.
      const int flips = 1 + static_cast<int>(rng.UniformInt(4));
      for (int f = 0; f < flips; ++f) {
        const size_t pos = 1 + rng.UniformInt(mutated.size() - 1);
        mutated[pos] ^= static_cast<uint8_t>(1u << rng.UniformInt(8));
      }
      Result<TimeSeries> out = (*codec)->Decompress(mutated);
      // A flip may survive as a (wrong) but well-formed payload; crashes and
      // unbounded allocations are the failures this test exists to catch.
      (void)out;
    }
  }
  SUCCEED();
}

TEST(ByteReaderTest, SkipPastEndIsCorruptionNotUnderflow) {
  const std::vector<uint8_t> bytes = {1, 2, 3, 4};
  ByteReader reader(bytes);
  EXPECT_TRUE(reader.Skip(2).ok());
  EXPECT_EQ(reader.remaining(), 2u);
  // Regression: Skip used to advance unchecked, so a corrupted length field
  // pushed pos_ past size_ and remaining() underflowed to a huge value.
  EXPECT_EQ(reader.Skip(3).code(), StatusCode::kCorruption);
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_FALSE(reader.GetU8().ok());
  // Skip(0) at the end is still fine.
  EXPECT_TRUE(reader.Skip(0).ok());
}

TEST(RobustnessTest, CorruptedSzLengthFieldsAlwaysError) {
  // Regression for the payload_size path in sz.cc: stamp 0xFFFFFFFF over
  // every 4-byte window of a valid SZ blob (one of them is the Huffman
  // payload size), and 0xFF over every byte. Decoding must fail cleanly or
  // succeed — never crash, hang or read out of bounds.
  TimeSeries ts = SampleSeries(600);
  SzCompressor codec;
  Result<std::vector<uint8_t>> blob = codec.Compress(ts, 0.1);
  ASSERT_TRUE(blob.ok());
  const uint32_t huge = 0xFFFFFFFFu;
  for (size_t pos = 1; pos + 4 <= blob->size(); ++pos) {
    std::vector<uint8_t> mutated = *blob;
    std::memcpy(mutated.data() + pos, &huge, sizeof(huge));
    Result<TimeSeries> out = codec.Decompress(mutated);
    if (out.ok()) EXPECT_EQ(out->size(), ts.size()) << "pos=" << pos;
  }
  for (size_t pos = 1; pos < blob->size(); ++pos) {
    std::vector<uint8_t> mutated = *blob;
    mutated[pos] = 0xFF;
    (void)codec.Decompress(mutated);
  }
  SUCCEED();
}

TEST(RobustnessTest, TruncatedBlobsAlwaysError) {
  TimeSeries ts = SampleSeries(400);
  for (const std::string& name : AllCodecs()) {
    Result<std::unique_ptr<Compressor>> codec = MakeCompressor(name);
    ASSERT_TRUE(codec.ok());
    Result<std::vector<uint8_t>> blob = (*codec)->Compress(ts, 0.1);
    ASSERT_TRUE(blob.ok());
    for (size_t keep : {size_t{0}, size_t{5}, blob->size() / 2,
                        blob->size() - 1}) {
      std::vector<uint8_t> truncated(blob->begin(), blob->begin() + keep);
      EXPECT_FALSE((*codec)->Decompress(truncated).ok())
          << name << " keep=" << keep;
    }
  }
}

}  // namespace
}  // namespace lossyts::compress
