#include "compress/pmc.h"

#include <cmath>

#include <gtest/gtest.h>

#include "compress/serde.h"
#include "core/metrics.h"
#include "core/rng.h"

namespace lossyts::compress {
namespace {

TimeSeries NoisySine(size_t n, uint64_t seed, double base = 20.0) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = base + 5.0 * std::sin(static_cast<double>(i) * 0.05) +
           0.2 * rng.Normal();
  }
  return TimeSeries(0, 60, std::move(v));
}

TEST(PmcTest, RoundTripPreservesMetadata) {
  TimeSeries ts = NoisySine(500, 1);
  PmcCompressor pmc;
  Result<std::vector<uint8_t>> blob = pmc.Compress(ts, 0.05);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = pmc.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), ts.size());
  EXPECT_EQ(out->start_timestamp(), ts.start_timestamp());
  EXPECT_EQ(out->interval_seconds(), ts.interval_seconds());
}

TEST(PmcTest, RespectsRelativeErrorBound) {
  PmcCompressor pmc;
  for (double eb : {0.01, 0.05, 0.1, 0.3, 0.8}) {
    TimeSeries ts = NoisySine(2000, 7);
    Result<std::vector<uint8_t>> blob = pmc.Compress(ts, eb);
    ASSERT_TRUE(blob.ok());
    Result<TimeSeries> out = pmc.Decompress(*blob);
    ASSERT_TRUE(out.ok());
    Result<double> max_rel = MaxRelError(ts.values(), out->values());
    ASSERT_TRUE(max_rel.ok());
    EXPECT_LE(*max_rel, eb * (1.0 + 1e-9)) << "eb=" << eb;
  }
}

TEST(PmcTest, ConstantSeriesBecomesOneSegment) {
  TimeSeries ts(0, 60, std::vector<double>(1000, 5.0));
  PmcCompressor pmc;
  Result<std::vector<uint8_t>> blob = pmc.Compress(ts, 0.01);
  ASSERT_TRUE(blob.ok());
  // Header (11) + segment count (4) + one segment (2 + 1 + 4, f32 mean).
  EXPECT_EQ(blob->size(), 11u + 4u + 7u);
  Result<TimeSeries> out = pmc.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  for (double v : out->values()) EXPECT_DOUBLE_EQ(v, 5.0);
}

TEST(PmcTest, OutputIsPiecewiseConstant) {
  TimeSeries ts = NoisySine(1000, 3);
  PmcCompressor pmc;
  Result<std::vector<uint8_t>> blob = pmc.Compress(ts, 0.1);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = pmc.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  // Count distinct runs; must be far fewer than points.
  size_t runs = 1;
  for (size_t i = 1; i < out->size(); ++i) {
    if ((*out)[i] != (*out)[i - 1]) ++runs;
  }
  EXPECT_LT(runs, ts.size() / 3);
}

TEST(PmcTest, HigherBoundGivesSmallerOutput) {
  TimeSeries ts = NoisySine(4000, 9);
  PmcCompressor pmc;
  Result<std::vector<uint8_t>> small_eb = pmc.Compress(ts, 0.01);
  Result<std::vector<uint8_t>> large_eb = pmc.Compress(ts, 0.5);
  ASSERT_TRUE(small_eb.ok());
  ASSERT_TRUE(large_eb.ok());
  EXPECT_LT(large_eb->size(), small_eb->size());
}

TEST(PmcTest, ExactZerosAreReconstructedExactly) {
  std::vector<double> v(200, 0.0);
  for (size_t i = 50; i < 100; ++i) v[i] = 10.0;
  TimeSeries ts(0, 600, std::move(v));
  PmcCompressor pmc;
  Result<std::vector<uint8_t>> blob = pmc.Compress(ts, 0.2);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = pmc.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ((*out)[i], 0.0);
  for (size_t i = 100; i < 200; ++i) EXPECT_EQ((*out)[i], 0.0);
}

TEST(PmcTest, NegativeValuesRespectBound) {
  Rng rng(13);
  std::vector<double> v(1000);
  for (auto& x : v) x = -50.0 + 2.0 * rng.Normal();
  TimeSeries ts(0, 60, std::move(v));
  PmcCompressor pmc;
  Result<std::vector<uint8_t>> blob = pmc.Compress(ts, 0.05);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = pmc.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  Result<double> max_rel = MaxRelError(ts.values(), out->values());
  ASSERT_TRUE(max_rel.ok());
  EXPECT_LE(*max_rel, 0.05 * (1.0 + 1e-9));
}

TEST(PmcTest, InvalidErrorBoundFails) {
  TimeSeries ts = NoisySine(10, 1);
  PmcCompressor pmc;
  EXPECT_FALSE(pmc.Compress(ts, 0.0).ok());
  EXPECT_FALSE(pmc.Compress(ts, -0.1).ok());
  EXPECT_FALSE(pmc.Compress(ts, 1.5).ok());
}

TEST(PmcTest, EmptySeriesFails) {
  TimeSeries ts;
  PmcCompressor pmc;
  EXPECT_FALSE(pmc.Compress(ts, 0.1).ok());
}

TEST(PmcTest, DecompressRejectsWrongAlgorithm) {
  TimeSeries ts = NoisySine(100, 1);
  PmcCompressor pmc;
  Result<std::vector<uint8_t>> blob = pmc.Compress(ts, 0.1);
  ASSERT_TRUE(blob.ok());
  (*blob)[0] = 2;  // Swing's algorithm id.
  EXPECT_FALSE(pmc.Decompress(*blob).ok());
}

TEST(PmcTest, DecompressRejectsTruncatedBlob) {
  TimeSeries ts = NoisySine(100, 1);
  PmcCompressor pmc;
  Result<std::vector<uint8_t>> blob = pmc.Compress(ts, 0.1);
  ASSERT_TRUE(blob.ok());
  blob->resize(blob->size() - 5);
  EXPECT_FALSE(pmc.Decompress(*blob).ok());
}

TEST(PmcTest, F64OptionStillHoldsBoundAndGrowsBlob) {
  TimeSeries ts = NoisySine(2000, 21);
  PmcCompressor::Options options;
  options.f32_coefficients = false;
  PmcCompressor wide(options);
  PmcCompressor narrow;
  Result<std::vector<uint8_t>> wide_blob = wide.Compress(ts, 0.1);
  Result<std::vector<uint8_t>> narrow_blob = narrow.Compress(ts, 0.1);
  ASSERT_TRUE(wide_blob.ok());
  ASSERT_TRUE(narrow_blob.ok());
  EXPECT_GT(wide_blob->size(), narrow_blob->size());
  Result<TimeSeries> out = wide.Decompress(*wide_blob);
  ASSERT_TRUE(out.ok());
  Result<double> max_rel = MaxRelError(ts.values(), out->values());
  ASSERT_TRUE(max_rel.ok());
  EXPECT_LE(*max_rel, 0.1 * (1.0 + 1e-9));
}

class PmcPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(PmcPropertyTest, BoundHoldsOnRandomWalks) {
  const double eb = GetParam();
  PmcCompressor pmc;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    std::vector<double> v(1500);
    double x = 100.0;
    for (auto& val : v) {
      x += rng.Normal();
      val = x;
    }
    TimeSeries ts(0, 1, std::move(v));
    Result<std::vector<uint8_t>> blob = pmc.Compress(ts, eb);
    ASSERT_TRUE(blob.ok());
    Result<TimeSeries> out = pmc.Decompress(*blob);
    ASSERT_TRUE(out.ok());
    Result<double> max_rel = MaxRelError(ts.values(), out->values());
    ASSERT_TRUE(max_rel.ok());
    EXPECT_LE(*max_rel, eb * (1.0 + 1e-9)) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, PmcPropertyTest,
                         ::testing::Values(0.01, 0.03, 0.05, 0.1, 0.2, 0.5));

// Regression (conformance mutation pass): a blob whose header claims few
// points but whose first segment claims length 65535 must fail as Corruption
// before the decoder materializes the bogus segment — not after building a
// multi-gigabyte vector from a chain of such segments.
TEST(PmcTest, SegmentLengthOverrunIsCorruption) {
  ByteWriter w;
  w.PutU8(1);   // AlgorithmId::kPmc.
  w.PutI32(0);  // First timestamp.
  w.PutU16(60);
  w.PutU32(10);     // num_points = 10...
  w.PutU32(1);      // ...one segment...
  w.PutU16(65535);  // ...claiming 65535 points.
  w.PutU8(1);       // f64 width.
  w.PutDouble(5.0);
  PmcCompressor pmc;
  Result<TimeSeries> out = pmc.Decompress(w.Finish());
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

// Regression (conformance harness, "steep" family): near DBL_MAX the
// allowance endpoints and the window sum both overflow; an infinite mean or
// an f32-overflowed coefficient used to compare "inside" the infinite
// interval and decode as inf.
TEST(PmcTest, NearMaxMagnitudesStayFiniteAndBounded) {
  TimeSeries ts(0, 60, {1.6e308, 1.65e308, -1.7e308, -1.6e308, 9e307});
  PmcCompressor pmc;
  for (const double eb : {0.2, 0.8}) {
    Result<std::vector<uint8_t>> blob = pmc.Compress(ts, eb);
    ASSERT_TRUE(blob.ok()) << "eb=" << eb;
    Result<TimeSeries> out = pmc.Decompress(*blob);
    ASSERT_TRUE(out.ok()) << "eb=" << eb;
    ASSERT_EQ(out->size(), ts.size());
    for (size_t i = 0; i < ts.size(); ++i) {
      ASSERT_TRUE(std::isfinite((*out)[i])) << "eb=" << eb << " i=" << i;
      const Allowance a = RelativeAllowance(ts[i], eb);
      EXPECT_GE((*out)[i], a.lo) << "eb=" << eb << " i=" << i;
      EXPECT_LE((*out)[i], a.hi) << "eb=" << eb << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace lossyts::compress
