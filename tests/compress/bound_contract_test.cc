// Edge-case coverage for the shared error-bound contract arithmetic
// (RelativeAllowance / CheckErrorBound / CheckFiniteValues /
// CheckHeaderRepresentable) and a cross-codec check that all lossy codecs
// reject invalid bounds and inputs identically — they all route through the
// same shared helpers, so divergence would mean a codec stopped calling them.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "compress/compressor.h"
#include "compress/header.h"
#include "compress/pipeline.h"

namespace lossyts::compress {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(RelativeAllowanceTest, PositiveValueBracketsValue) {
  const Allowance a = RelativeAllowance(10.0, 0.1);
  EXPECT_DOUBLE_EQ(a.lo, 9.0);
  EXPECT_DOUBLE_EQ(a.hi, 11.0);
}

TEST(RelativeAllowanceTest, NegativeValueKeepsOrdering) {
  // Slack uses |v|, so lo < v < hi also for negative values; a naive
  // v*(1-eb)..v*(1+eb) would invert the interval.
  const Allowance a = RelativeAllowance(-10.0, 0.1);
  EXPECT_DOUBLE_EQ(a.lo, -11.0);
  EXPECT_DOUBLE_EQ(a.hi, -9.0);
  EXPECT_LT(a.lo, a.hi);
}

TEST(RelativeAllowanceTest, ExactZeroHasZeroWidth) {
  const Allowance a = RelativeAllowance(0.0, 0.8);
  EXPECT_EQ(a.lo, 0.0);
  EXPECT_EQ(a.hi, 0.0);
}

TEST(RelativeAllowanceTest, SubnormalKeepsOrdering) {
  const double v = 5e-324;  // Smallest positive subnormal.
  const Allowance a = RelativeAllowance(v, 0.5);
  EXPECT_LE(a.lo, v);
  EXPECT_GE(a.hi, v);
}

TEST(RelativeAllowanceTest, HugeValueOverflowsToInfiniteEndpoint) {
  // Documents the overflow the codecs must defend against: for |v| close to
  // DBL_MAX the upper endpoint saturates at +inf, so "rec <= hi" stops
  // constraining and codecs must additionally require finite reconstructions
  // (see the isfinite guards in pmc/swing/sz/ppa).
  const double v = 1.6e308;
  const Allowance a = RelativeAllowance(v, 0.8);
  EXPECT_TRUE(std::isinf(a.hi));
  EXPECT_TRUE(std::isfinite(a.lo));
}

TEST(RelativeAllowanceTest, NaNValuePoisonsTheInterval) {
  const Allowance a = RelativeAllowance(std::nan(""), 0.1);
  // Both endpoints are NaN, so the membership test `rec >= lo && rec <= hi`
  // is false for every rec: no reconstruction can satisfy a NaN point, which
  // is why the lossy codecs reject non-finite input up front.
  EXPECT_TRUE(std::isnan(a.lo));
  EXPECT_TRUE(std::isnan(a.hi));
  EXPECT_FALSE(1.0 >= a.lo && 1.0 <= a.hi);
}

TEST(CheckErrorBoundTest, AcceptsTheOpenUnitInterval) {
  EXPECT_TRUE(CheckErrorBound(0.01).ok());
  EXPECT_TRUE(CheckErrorBound(0.5).ok());
  EXPECT_TRUE(CheckErrorBound(0.999).ok());
  EXPECT_TRUE(CheckErrorBound(std::numeric_limits<double>::denorm_min()).ok());
}

TEST(CheckErrorBoundTest, RejectsBoundaryAndInvalidValues) {
  for (const double eb : {0.0, -0.1, 1.0, 1.5, kInf, -kInf}) {
    const Status s = CheckErrorBound(eb);
    EXPECT_FALSE(s.ok()) << "eb=" << eb;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << "eb=" << eb;
  }
}

TEST(CheckErrorBoundTest, RejectsNaN) {
  const Status s = CheckErrorBound(std::nan(""));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CheckHeaderRepresentableTest, RejectsOutOfRangeMetadata) {
  EXPECT_TRUE(
      CheckHeaderRepresentable(TimeSeries(0, 60, {1.0})).ok());
  EXPECT_FALSE(
      CheckHeaderRepresentable(TimeSeries(3000000000ll, 60, {1.0})).ok());
  EXPECT_FALSE(
      CheckHeaderRepresentable(TimeSeries(-3000000000ll, 60, {1.0})).ok());
  EXPECT_FALSE(CheckHeaderRepresentable(TimeSeries(0, 70000, {1.0})).ok());
  EXPECT_FALSE(CheckHeaderRepresentable(TimeSeries(0, -1, {1.0})).ok());
}

// ---------------------------------------------------------------------------
// Cross-codec: identical rejection behaviour.

class LossyCodecContractTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LossyCodecContractTest, RejectsInvalidBoundsWithSharedDiagnostics) {
  Result<std::unique_ptr<Compressor>> codec = MakeCompressor(GetParam());
  ASSERT_TRUE(codec.ok());
  TimeSeries ts(0, 60, {1.0, 2.0, 3.0, 4.0, 5.0});
  for (const double eb : {0.0, -0.5, 1.0, 2.0, std::nan("")}) {
    Result<std::vector<uint8_t>> blob = (*codec)->Compress(ts, eb);
    ASSERT_FALSE(blob.ok()) << GetParam() << " eb=" << eb;
    // All codecs route through the shared CheckErrorBound, so the code AND
    // the message must be byte-identical to the helper's.
    const Status expected = CheckErrorBound(eb);
    EXPECT_EQ(blob.status().code(), expected.code());
    EXPECT_EQ(blob.status().message(), expected.message());
  }
}

TEST_P(LossyCodecContractTest, RejectsNonFiniteValues) {
  Result<std::unique_ptr<Compressor>> codec = MakeCompressor(GetParam());
  ASSERT_TRUE(codec.ok());
  for (const double bad : {std::nan(""), kInf, -kInf}) {
    TimeSeries ts(0, 60, {1.0, bad, 3.0});
    Result<std::vector<uint8_t>> blob = (*codec)->Compress(ts, 0.1);
    ASSERT_FALSE(blob.ok()) << GetParam() << " value=" << bad;
    EXPECT_EQ(blob.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_P(LossyCodecContractTest, RejectsUnrepresentableHeaderMetadata) {
  Result<std::unique_ptr<Compressor>> codec = MakeCompressor(GetParam());
  ASSERT_TRUE(codec.ok());
  std::vector<double> v(8, 1.0);
  TimeSeries bad_interval(0, 70000, std::vector<double>(v));
  TimeSeries bad_timestamp(int64_t{1} << 40, 60, std::vector<double>(v));
  for (const TimeSeries* ts : {&bad_interval, &bad_timestamp}) {
    Result<std::vector<uint8_t>> blob = (*codec)->Compress(*ts, 0.1);
    ASSERT_FALSE(blob.ok()) << GetParam();
    EXPECT_EQ(blob.status().code(), StatusCode::kInvalidArgument);
  }
}

INSTANTIATE_TEST_SUITE_P(AllLossyCodecs, LossyCodecContractTest,
                         ::testing::Values("PMC", "SWING", "SZ", "PPA"));

// The lossless codecs accept any bit pattern — NaN and inf round-trip
// bit-exactly instead of being rejected.
class LosslessCodecContractTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(LosslessCodecContractTest, RoundTripsNonFiniteBitPatterns) {
  Result<std::unique_ptr<Compressor>> codec = MakeCompressor(GetParam());
  ASSERT_TRUE(codec.ok());
  TimeSeries ts(0, 60, {1.0, std::nan(""), kInf, -kInf, -0.0, 2.0});
  Result<std::vector<uint8_t>> blob = (*codec)->Compress(ts, 0.1);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = (*codec)->Decompress(*blob);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), ts.size());
  for (size_t i = 0; i < ts.size(); ++i) {
    uint64_t a, b;
    const double va = ts[i];
    const double vb = (*out)[i];
    std::memcpy(&a, &va, sizeof(a));
    std::memcpy(&b, &vb, sizeof(b));
    EXPECT_EQ(a, b) << "index " << i;
  }
}

TEST_P(LosslessCodecContractTest, StillRejectsUnrepresentableHeader) {
  Result<std::unique_ptr<Compressor>> codec = MakeCompressor(GetParam());
  ASSERT_TRUE(codec.ok());
  TimeSeries ts(0, 70000, {1.0, 2.0});
  Result<std::vector<uint8_t>> blob = (*codec)->Compress(ts, 0.1);
  ASSERT_FALSE(blob.ok());
  EXPECT_EQ(blob.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(AllLosslessCodecs, LosslessCodecContractTest,
                         ::testing::Values("GORILLA", "CHIMP"));

}  // namespace
}  // namespace lossyts::compress
