#include "compress/chimp.h"

#include <cmath>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "compress/gorilla.h"
#include "compress/serde.h"
#include "core/rng.h"
#include "zip/bitstream.h"

namespace lossyts::compress {
namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void ExpectLossless(const TimeSeries& ts) {
  ChimpCompressor chimp;
  Result<std::vector<uint8_t>> blob = chimp.Compress(ts, 0.0);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = chimp.Decompress(*blob);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), ts.size());
  for (size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(DoubleBits(ts[i]), DoubleBits((*out)[i])) << "i=" << i;
  }
}

TEST(ChimpTest, SingleValue) { ExpectLossless(TimeSeries(0, 60, {2.5})); }

TEST(ChimpTest, ConstantSeriesIsTiny) {
  TimeSeries ts(0, 60, std::vector<double>(8000, 12.25));
  ChimpCompressor chimp;
  Result<std::vector<uint8_t>> blob = chimp.Compress(ts, 0.0);
  ASSERT_TRUE(blob.ok());
  // Two control bits per repeated value.
  EXPECT_LT(blob->size(), 8000u / 4 + 64);
  ExpectLossless(ts);
}

TEST(ChimpTest, SmoothSeriesRoundTrips) {
  std::vector<double> v(5000);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 20.0 + std::sin(static_cast<double>(i) * 0.01);
  }
  ExpectLossless(TimeSeries(0, 60, std::move(v)));
}

TEST(ChimpTest, QuantizedSensorDataRoundTrips) {
  Rng rng(1);
  std::vector<double> v(4000);
  double x = 400.0;
  for (auto& val : v) {
    x += rng.Normal();
    val = std::round(x * 100.0) / 100.0;
  }
  ExpectLossless(TimeSeries(0, 60, std::move(v)));
}

TEST(ChimpTest, RandomValuesRoundTrip) {
  Rng rng(2);
  std::vector<double> v(3000);
  for (auto& x : v) x = rng.Normal(0.0, 1e6);
  ExpectLossless(TimeSeries(0, 60, std::move(v)));
}

TEST(ChimpTest, SpecialValuesRoundTrip) {
  ExpectLossless(TimeSeries(
      0, 60,
      {0.0, -0.0, 1.0, -1.0, 1e300, -1e-300, 5e-324,
       std::numeric_limits<double>::infinity(),
       std::numeric_limits<double>::max()}));
}

TEST(ChimpTest, BeatsGorillaOnQuantizedData) {
  // Chimp's headline claim: better ratios than Gorilla on real traces.
  Rng rng(3);
  std::vector<double> v(20000);
  double x = 25.0;
  for (auto& val : v) {
    x += 0.05 * rng.Normal();
    val = std::round(x * 100.0) / 100.0;
  }
  TimeSeries ts(0, 60, std::move(v));
  ChimpCompressor chimp;
  GorillaCompressor gorilla;
  Result<std::vector<uint8_t>> chimp_blob = chimp.Compress(ts, 0.0);
  Result<std::vector<uint8_t>> gorilla_blob = gorilla.Compress(ts, 0.0);
  ASSERT_TRUE(chimp_blob.ok());
  ASSERT_TRUE(gorilla_blob.ok());
  EXPECT_LT(chimp_blob->size(), gorilla_blob->size());
}

TEST(ChimpTest, EmptySeriesFails) {
  ChimpCompressor chimp;
  EXPECT_FALSE(chimp.Compress(TimeSeries(), 0.0).ok());
}

TEST(ChimpTest, DecompressRejectsTruncatedBlob) {
  Rng rng(4);
  std::vector<double> v(500);
  for (auto& val : v) val = rng.Normal();
  ChimpCompressor chimp;
  Result<std::vector<uint8_t>> blob =
      chimp.Compress(TimeSeries(0, 60, std::move(v)), 0.0);
  ASSERT_TRUE(blob.ok());
  blob->resize(blob->size() - 20);
  EXPECT_FALSE(chimp.Decompress(*blob).ok());
}

TEST(ChimpTest, DecompressRejectsWrongAlgorithm) {
  ChimpCompressor chimp;
  Result<std::vector<uint8_t>> blob =
      chimp.Compress(TimeSeries(0, 60, {1.0, 2.0}), 0.0);
  ASSERT_TRUE(blob.ok());
  (*blob)[0] = 4;  // Gorilla's id.
  EXPECT_FALSE(chimp.Decompress(*blob).ok());
}

// Regression (conformance mutation pass under UBSan): a center-bits record
// claiming leading=0 and significant=0 made trailing = 64, and `center << 64`
// is undefined — on x86 the shift wraps to zero, so the blob silently
// *decoded* instead of failing. The encoder never emits significant == 0 (a
// zero XOR uses the '00' identical-value control), so it must be Corruption.
TEST(ChimpTest, ZeroSignificantCenterRecordIsCorruption) {
  ByteWriter w;
  w.PutU8(5);   // AlgorithmId::kChimp.
  w.PutI32(0);  // First timestamp.
  w.PutU16(60);
  w.PutU32(2);  // Two points: one literal + one center-bits record.
  zip::BitWriter bits;
  for (int i = 0; i < 64; ++i) bits.WriteBits(0, 1);  // First value: 0.0.
  bits.WriteBits(0b10, 2);  // Center-bits control (LSB-first pair (0,1)).
  bits.WriteBits(0, 3);     // leading_code 0 -> leading 0.
  bits.WriteBits(0, 6);     // significant 0 -> trailing would be 64.
  const std::vector<uint8_t> payload = bits.Finish();
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutBytes(payload);
  ChimpCompressor chimp;
  Result<TimeSeries> out = chimp.Decompress(w.Finish());
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace lossyts::compress
