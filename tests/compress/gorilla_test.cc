#include "compress/gorilla.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace lossyts::compress {
namespace {

void ExpectLossless(const TimeSeries& ts) {
  GorillaCompressor gorilla;
  Result<std::vector<uint8_t>> blob = gorilla.Compress(ts, 0.0);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = gorilla.Decompress(*blob);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), ts.size());
  for (size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ((*out)[i], ts[i]) << "i=" << i;
  }
}

TEST(GorillaTest, SingleValue) { ExpectLossless(TimeSeries(0, 60, {3.14})); }

TEST(GorillaTest, ConstantSeriesIsTiny) {
  TimeSeries ts(0, 60, std::vector<double>(10000, 7.25));
  GorillaCompressor gorilla;
  Result<std::vector<uint8_t>> blob = gorilla.Compress(ts, 0.0);
  ASSERT_TRUE(blob.ok());
  // One 64-bit value + one bit per repeat + headers.
  EXPECT_LT(blob->size(), 10000u / 8 + 64);
  ExpectLossless(ts);
}

TEST(GorillaTest, SmoothSeriesRoundTrips) {
  std::vector<double> v(5000);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 20.0 + std::sin(static_cast<double>(i) * 0.01);
  }
  ExpectLossless(TimeSeries(0, 60, std::move(v)));
}

TEST(GorillaTest, RandomValuesRoundTrip) {
  Rng rng(31);
  std::vector<double> v(3000);
  for (auto& x : v) x = rng.Normal(0.0, 1000.0);
  ExpectLossless(TimeSeries(0, 60, std::move(v)));
}

TEST(GorillaTest, SpecialValuesRoundTrip) {
  ExpectLossless(TimeSeries(
      0, 60,
      {0.0, -0.0, 1.0, -1.0, 1e300, -1e300, 1e-300, 5e-324,
       std::numeric_limits<double>::infinity(),
       -std::numeric_limits<double>::infinity(),
       std::numeric_limits<double>::max(),
       std::numeric_limits<double>::min()}));
}

TEST(GorillaTest, SignFlipsRoundTrip) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) {
    v.push_back(i % 2 == 0 ? 42.5 : -42.5);
  }
  ExpectLossless(TimeSeries(0, 60, std::move(v)));
}

TEST(GorillaTest, SimilarValuesCompressBetterThanRandom) {
  GorillaCompressor gorilla;
  Rng rng(8);

  std::vector<double> smooth(4096);
  double x = 1000.0;
  for (auto& val : smooth) {
    x += 0.125;  // Exactly representable increments XOR compactly.
    val = x;
  }
  std::vector<double> random(4096);
  for (auto& val : random) val = rng.Normal(0.0, 12345.678);

  Result<std::vector<uint8_t>> smooth_blob =
      gorilla.Compress(TimeSeries(0, 60, smooth), 0.0);
  Result<std::vector<uint8_t>> random_blob =
      gorilla.Compress(TimeSeries(0, 60, random), 0.0);
  ASSERT_TRUE(smooth_blob.ok());
  ASSERT_TRUE(random_blob.ok());
  EXPECT_LT(smooth_blob->size(), random_blob->size());
}

TEST(GorillaTest, EmptySeriesFails) {
  GorillaCompressor gorilla;
  EXPECT_FALSE(gorilla.Compress(TimeSeries(), 0.0).ok());
}

TEST(GorillaTest, DecompressRejectsTruncatedBlob) {
  Rng rng(4);
  std::vector<double> v(500);
  for (auto& val : v) val = rng.Normal();
  GorillaCompressor gorilla;
  Result<std::vector<uint8_t>> blob =
      gorilla.Compress(TimeSeries(0, 60, std::move(v)), 0.0);
  ASSERT_TRUE(blob.ok());
  blob->resize(blob->size() - 10);
  EXPECT_FALSE(gorilla.Decompress(*blob).ok());
}

TEST(GorillaTest, DecompressRejectsWrongAlgorithm) {
  GorillaCompressor gorilla;
  Result<std::vector<uint8_t>> blob =
      gorilla.Compress(TimeSeries(0, 60, {1.0, 2.0}), 0.0);
  ASSERT_TRUE(blob.ok());
  (*blob)[0] = 1;
  EXPECT_FALSE(gorilla.Decompress(*blob).ok());
}

}  // namespace
}  // namespace lossyts::compress
