#include "compress/swing.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/rng.h"

namespace lossyts::compress {
namespace {

TimeSeries NoisySine(size_t n, uint64_t seed, double base = 20.0) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = base + 5.0 * std::sin(static_cast<double>(i) * 0.05) +
           0.2 * rng.Normal();
  }
  return TimeSeries(0, 60, std::move(v));
}

TEST(SwingTest, RoundTripPreservesMetadata) {
  TimeSeries ts = NoisySine(500, 1);
  SwingCompressor swing;
  Result<std::vector<uint8_t>> blob = swing.Compress(ts, 0.05);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = swing.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), ts.size());
  EXPECT_EQ(out->start_timestamp(), ts.start_timestamp());
  EXPECT_EQ(out->interval_seconds(), ts.interval_seconds());
}

TEST(SwingTest, RespectsRelativeErrorBound) {
  SwingCompressor swing;
  for (double eb : {0.01, 0.05, 0.1, 0.3, 0.8}) {
    TimeSeries ts = NoisySine(2000, 7);
    Result<std::vector<uint8_t>> blob = swing.Compress(ts, eb);
    ASSERT_TRUE(blob.ok());
    Result<TimeSeries> out = swing.Decompress(*blob);
    ASSERT_TRUE(out.ok());
    Result<double> max_rel = MaxRelError(ts.values(), out->values());
    ASSERT_TRUE(max_rel.ok());
    EXPECT_LE(*max_rel, eb * (1.0 + 1e-9)) << "eb=" << eb;
  }
}

TEST(SwingTest, PerfectLineIsOneSegment) {
  std::vector<double> v(5000);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 10.0 + 0.01 * static_cast<double>(i);
  }
  TimeSeries ts(0, 60, std::move(v));
  SwingCompressor swing;
  Result<std::vector<uint8_t>> blob = swing.Compress(ts, 0.01);
  ASSERT_TRUE(blob.ok());
  // Header (11) + segment count (4) + one segment (2 + 8 + 8).
  EXPECT_EQ(blob->size(), 11u + 4u + 18u);
  Result<TimeSeries> out = swing.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  Result<double> max_rel = MaxRelError(ts.values(), out->values());
  ASSERT_TRUE(max_rel.ok());
  EXPECT_LE(*max_rel, 0.01);
}

TEST(SwingTest, FirstPointOfSegmentIsExact) {
  TimeSeries ts = NoisySine(300, 5);
  SwingCompressor swing;
  Result<std::vector<uint8_t>> blob = swing.Compress(ts, 0.1);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = swing.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  // The very first value is always a segment anchor and stored exactly.
  EXPECT_DOUBLE_EQ((*out)[0], ts[0]);
}

TEST(SwingTest, LinearTrendBeatsPmcStyleConstantFit) {
  // On a pure trend Swing needs 1 segment while a constant fit needs many;
  // sanity-check Swing's segment economy on trends.
  std::vector<double> v(2000);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 100.0 + 0.5 * static_cast<double>(i);
  }
  TimeSeries ts(0, 60, std::move(v));
  SwingCompressor swing;
  Result<std::vector<uint8_t>> blob = swing.Compress(ts, 0.05);
  ASSERT_TRUE(blob.ok());
  EXPECT_LT(blob->size(), 100u);
}

TEST(SwingTest, ZeroCrossingsBreakSegments) {
  // Relative bounds give zero tolerance at v == 0, so a series passing
  // through exact zeros cannot be covered by long swing segments.
  std::vector<double> v;
  for (int rep = 0; rep < 50; ++rep) {
    for (int i = 0; i < 10; ++i) v.push_back(static_cast<double>(i));
    for (int i = 10; i > 0; --i) v.push_back(static_cast<double>(i));
    v.push_back(0.0);
  }
  TimeSeries ts(0, 600, std::move(v));
  SwingCompressor swing;
  Result<std::vector<uint8_t>> blob = swing.Compress(ts, 0.3);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = swing.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < ts.size(); ++i) {
    if (ts[i] == 0.0) EXPECT_EQ((*out)[i], 0.0) << "i=" << i;
  }
}

TEST(SwingTest, InvalidErrorBoundFails) {
  TimeSeries ts = NoisySine(10, 1);
  SwingCompressor swing;
  EXPECT_FALSE(swing.Compress(ts, 0.0).ok());
  EXPECT_FALSE(swing.Compress(ts, 2.0).ok());
}

TEST(SwingTest, EmptySeriesFails) {
  SwingCompressor swing;
  EXPECT_FALSE(swing.Compress(TimeSeries(), 0.1).ok());
}

TEST(SwingTest, DecompressRejectsWrongAlgorithm) {
  TimeSeries ts = NoisySine(100, 1);
  SwingCompressor swing;
  Result<std::vector<uint8_t>> blob = swing.Compress(ts, 0.1);
  ASSERT_TRUE(blob.ok());
  (*blob)[0] = 1;  // PMC's algorithm id.
  EXPECT_FALSE(swing.Decompress(*blob).ok());
}

TEST(SwingTest, SingleValueSeries) {
  TimeSeries ts(0, 60, {42.0});
  SwingCompressor swing;
  Result<std::vector<uint8_t>> blob = swing.Compress(ts, 0.1);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = swing.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_DOUBLE_EQ((*out)[0], 42.0);
}

class SwingPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(SwingPropertyTest, BoundHoldsOnRandomWalks) {
  const double eb = GetParam();
  SwingCompressor swing;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed + 100);
    std::vector<double> v(1500);
    double x = 100.0;
    for (auto& val : v) {
      x += rng.Normal();
      val = x;
    }
    TimeSeries ts(0, 1, std::move(v));
    Result<std::vector<uint8_t>> blob = swing.Compress(ts, eb);
    ASSERT_TRUE(blob.ok());
    Result<TimeSeries> out = swing.Decompress(*blob);
    ASSERT_TRUE(out.ok());
    Result<double> max_rel = MaxRelError(ts.values(), out->values());
    ASSERT_TRUE(max_rel.ok());
    EXPECT_LE(*max_rel, eb * (1.0 + 1e-9)) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, SwingPropertyTest,
                         ::testing::Values(0.01, 0.03, 0.05, 0.1, 0.2, 0.5));

// Regression (conformance harness, "zero-blocks"/"sign-flips" families): an
// exact zero inside a segment has a zero-width allowance, but the midpoint
// slope times the in-segment index rounds — fl(-1/3)*3 is about -1+1.1e-16,
// so the reconstruction drifts off zero unless the compressor verifies with
// the decoder's exact arithmetic and shortens the segment.
TEST(SwingTest, ExactZeroInsideSlopeIsReconstructedExactly) {
  TimeSeries ts(0, 60, {1.0, 0.7, 0.35, 0.0});
  SwingCompressor swing;
  Result<std::vector<uint8_t>> blob = swing.Compress(ts, 0.2);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> out = swing.Decompress(*blob);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 4u);
  EXPECT_EQ((*out)[3], 0.0);
  Result<double> max_rel = MaxRelError(ts.values(), out->values());
  ASSERT_TRUE(max_rel.ok());
  EXPECT_LE(*max_rel, 0.2);
}

// Regression (conformance harness, "steep" family): for values near
// DBL_MAX the slope-interval endpoints overflow to ±inf, the midpoint slope
// becomes ±inf or NaN, and at decode time inf*0 = NaN poisoned even the
// anchor point. The allowance endpoints can overflow to ±inf too, letting an
// infinite reconstruction "pass" the bound comparison.
TEST(SwingTest, NearMaxMagnitudesStayFiniteAndBounded) {
  std::vector<double> v;
  for (int i = 0; i < 16; ++i) {
    const double c = 0.1 + 0.05 * static_cast<double>(i);
    v.push_back((i % 2 == 0 ? 1.0 : -1.0) * c * 1.7976931348623157e308);
  }
  TimeSeries ts(0, 60, std::move(v));
  SwingCompressor swing;
  for (const double eb : {0.2, 0.8}) {
    Result<std::vector<uint8_t>> blob = swing.Compress(ts, eb);
    ASSERT_TRUE(blob.ok()) << "eb=" << eb;
    Result<TimeSeries> out = swing.Decompress(*blob);
    ASSERT_TRUE(out.ok()) << "eb=" << eb;
    ASSERT_EQ(out->size(), ts.size());
    for (size_t i = 0; i < ts.size(); ++i) {
      ASSERT_TRUE(std::isfinite((*out)[i])) << "eb=" << eb << " i=" << i;
      const Allowance a = RelativeAllowance(ts[i], eb);
      EXPECT_GE((*out)[i], a.lo) << "eb=" << eb << " i=" << i;
      EXPECT_LE((*out)[i], a.hi) << "eb=" << eb << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace lossyts::compress
