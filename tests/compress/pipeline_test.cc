#include "compress/pipeline.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace lossyts::compress {
namespace {

TimeSeries SmoothSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 50.0;
  for (size_t i = 0; i < n; ++i) {
    x += 0.05 * rng.Normal();
    v[i] = x + 3.0 * std::sin(static_cast<double>(i) * 0.02);
  }
  return TimeSeries(0, 900, std::move(v));
}

TEST(PipelineTest, SerializeRawHasExpectedSize) {
  TimeSeries ts = SmoothSeries(100, 1);
  std::vector<uint8_t> raw = SerializeRaw(ts);
  EXPECT_EQ(raw.size(), 4u + 2u + 4u + 100u * 8u);
}

TEST(PipelineTest, SerializeRawCsvIsParsableText) {
  TimeSeries ts = SmoothSeries(10, 1);
  std::vector<uint8_t> csv = SerializeRawCsv(ts);
  const std::string text(csv.begin(), csv.end());
  EXPECT_EQ(text.rfind("timestamp,value\n", 0), 0u);
  // One header line plus one line per point.
  size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 11u);
}

TEST(PipelineTest, RawGzipShrinksSmoothData) {
  TimeSeries ts = SmoothSeries(5000, 2);
  EXPECT_LT(RawGzipSize(ts), SerializeRawCsv(ts).size());
}

TEST(PipelineTest, RunPipelineProducesConsistentResult) {
  TimeSeries ts = SmoothSeries(3000, 3);
  Result<std::unique_ptr<Compressor>> pmc = MakeCompressor("PMC");
  ASSERT_TRUE(pmc.ok());
  Result<PipelineResult> result = RunPipeline(**pmc, ts, 0.05);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->compressor_name, "PMC");
  EXPECT_DOUBLE_EQ(result->error_bound, 0.05);
  EXPECT_GT(result->compression_ratio, 1.0);
  EXPECT_GT(result->segment_count, 0u);
  EXPECT_LT(result->segment_count, ts.size());
  EXPECT_GT(result->te_rmse, 0.0);
  EXPECT_LE(result->te_max_rel, 0.05 * (1.0 + 1e-9));
  EXPECT_EQ(result->decompressed.size(), ts.size());
  EXPECT_EQ(result->raw_gz_bytes, RawGzipSize(ts));
  EXPECT_DOUBLE_EQ(result->compression_ratio,
                   static_cast<double>(result->raw_gz_bytes) /
                       static_cast<double>(result->gz_bytes));
}

TEST(PipelineTest, CrIncreasesWithErrorBoundForPmc) {
  TimeSeries ts = SmoothSeries(4000, 5);
  Result<std::unique_ptr<Compressor>> pmc = MakeCompressor("PMC");
  ASSERT_TRUE(pmc.ok());
  Result<PipelineResult> low = RunPipeline(**pmc, ts, 0.01);
  Result<PipelineResult> high = RunPipeline(**pmc, ts, 0.5);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_GT(high->compression_ratio, low->compression_ratio);
  EXPECT_GE(high->te_rmse, low->te_rmse);
  EXPECT_LT(high->segment_count, low->segment_count);
}

TEST(PipelineTest, AllThreeLossyCompressorsBeatGorillaOnSmoothData) {
  TimeSeries ts = SmoothSeries(4000, 7);
  Result<std::unique_ptr<Compressor>> gorilla = MakeCompressor("GORILLA");
  ASSERT_TRUE(gorilla.ok());
  Result<PipelineResult> baseline = RunPipeline(**gorilla, ts, 0.0);
  ASSERT_TRUE(baseline.ok());
  for (const std::string& name : LossyCompressorNames()) {
    Result<std::unique_ptr<Compressor>> c = MakeCompressor(name);
    ASSERT_TRUE(c.ok());
    Result<PipelineResult> r = RunPipeline(**c, ts, 0.1);
    ASSERT_TRUE(r.ok()) << name;
    EXPECT_GT(r->compression_ratio, baseline->compression_ratio) << name;
  }
}

TEST(PipelineTest, GorillaIsLosslessThroughPipeline) {
  TimeSeries ts = SmoothSeries(2000, 9);
  Result<std::unique_ptr<Compressor>> gorilla = MakeCompressor("GORILLA");
  ASSERT_TRUE(gorilla.ok());
  Result<PipelineResult> r = RunPipeline(**gorilla, ts, 0.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->te_rmse, 0.0);
  EXPECT_EQ(r->te_max_rel, 0.0);
}

TEST(PipelineTest, SegmentCountsMatchFigure3Ordering) {
  // Swing's two-coefficient model needs fewer segments than PMC's constant.
  TimeSeries ts = SmoothSeries(4000, 11);
  Result<std::unique_ptr<Compressor>> pmc = MakeCompressor("PMC");
  Result<std::unique_ptr<Compressor>> swing = MakeCompressor("SWING");
  ASSERT_TRUE(pmc.ok());
  ASSERT_TRUE(swing.ok());
  Result<PipelineResult> pmc_result = RunPipeline(**pmc, ts, 0.1);
  Result<PipelineResult> swing_result = RunPipeline(**swing, ts, 0.1);
  ASSERT_TRUE(pmc_result.ok());
  ASSERT_TRUE(swing_result.ok());
  EXPECT_LE(swing_result->segment_count, pmc_result->segment_count);
}

TEST(PipelineTest, MakeCompressorRejectsUnknownName) {
  Result<std::unique_ptr<Compressor>> c = MakeCompressor("LZMA");
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kNotFound);
}

TEST(PipelineTest, PaperErrorBoundsMatchSection32) {
  const std::vector<double>& ebs = PaperErrorBounds();
  ASSERT_EQ(ebs.size(), 13u);
  EXPECT_DOUBLE_EQ(ebs.front(), 0.01);
  EXPECT_DOUBLE_EQ(ebs.back(), 0.8);
  for (size_t i = 1; i < ebs.size(); ++i) EXPECT_GT(ebs[i], ebs[i - 1]);
}

TEST(PipelineTest, CountConstantRuns) {
  EXPECT_EQ(CountConstantRuns(TimeSeries()), 0u);
  EXPECT_EQ(CountConstantRuns(TimeSeries(0, 1, {1.0})), 1u);
  EXPECT_EQ(CountConstantRuns(TimeSeries(0, 1, {1.0, 1.0, 2.0, 2.0, 1.0})),
            3u);
}

}  // namespace
}  // namespace lossyts::compress
