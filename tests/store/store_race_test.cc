// Salvage-opening a store file that an active writer is still appending to:
// every open must yield a consistent frame prefix of what was ingested (or a
// clean Corruption before the header lands) — never a crash, never garbage
// values. Includes the torn-frame crash model via the "store_write"
// failpoint. Named *ConcurrencyTest so the TSan CI leg picks it up.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/failpoint.h"
#include "core/time_series.h"
#include "store/format.h"
#include "store/reader.h"
#include "store/writer.h"

namespace lossyts::store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

double ExpectedValue(size_t i) {
  return static_cast<double>(i) * 0.125 - 42.0;
}

StoreOptions RaceOptions() {
  StoreOptions options;
  options.chunk_span = 8;
  options.codecs = {"GORILLA"};  // Lossless: prefix checks are exact.
  return options;
}

// Asserts that `reader` holds exactly the first total_points() values of the
// deterministic stream, chunk-aligned except for a finished tail.
void CheckPrefix(StoreReader& reader, size_t max_points) {
  const uint64_t points = reader.total_points();
  ASSERT_LE(points, max_points);
  if (points == 0) return;
  auto all = reader.ReadAll();
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->values().size(), points);
  for (size_t i = 0; i < points; ++i) {
    ASSERT_EQ(all->values()[i], ExpectedValue(i)) << "point " << i;
  }
  ASSERT_EQ(all->start_timestamp(), 0);
}

TEST(StoreRaceConcurrencyTest, SalvageOpenRacesAnActiveWriter) {
  const std::string path = TempPath("race_live.lts");
  std::remove(path.c_str());
  constexpr size_t kChunks = 150;
  constexpr size_t kSpan = 8;

  // One mid-ingest open attempt; asserts the salvage contract either way.
  auto try_open = [&](bool& opened) {
    auto reader = StoreReader::Open(path);
    if (!reader.ok()) {
      // Before the header lands (or mid header write) the file is not a
      // store yet; a clean rejection is the only acceptable failure.
      ASSERT_TRUE(reader.status().code() == StatusCode::kCorruption ||
                  reader.status().code() == StatusCode::kNotFound ||
                  reader.status().code() == StatusCode::kIoError)
          << reader.status().ToString();
      return;
    }
    // Mid-ingest there is no footer: every successful open is a salvage of
    // a consistent chunk prefix.
    EXPECT_FALSE((*reader)->clean());
    CheckPrefix(**reader, kChunks * kSpan);
    opened = true;
  };

  // A free-running racer adds nondeterministic interleavings on top of the
  // writer's own deterministic mid-ingest opens below (on a loaded single
  // core it may never get a slot, so nothing is asserted about its count).
  std::atomic<bool> done{false};
  std::thread reader_thread([&] {
    bool opened = false;
    while (!done.load()) try_open(opened);
  });

  bool salvaged_midway = false;
  {
    auto writer = StoreWriter::Create(path, RaceOptions());
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (size_t c = 0; c < kChunks; ++c) {
      std::vector<double> values;
      for (size_t i = 0; i < kSpan; ++i) {
        values.push_back(ExpectedValue(c * kSpan + i));
      }
      ASSERT_TRUE(
          (*writer)
              ->Append(TimeSeries(static_cast<int64_t>(c * kSpan) * 60, 60,
                                  std::move(values)))
              .ok());
      if (c % 10 == 9) try_open(salvaged_midway);
    }
    done.store(true);
    reader_thread.join();
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  EXPECT_TRUE(salvaged_midway);

  // After Finish the footer is valid: the final open is complete and exact.
  auto reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE((*reader)->clean());
  EXPECT_EQ((*reader)->total_points(), kChunks * kSpan);
  CheckPrefix(**reader, kChunks * kSpan);
}

TEST(StoreRaceConcurrencyTest, TornFrameFromStoreWriteFailpointSalvages) {
  const std::string path = TempPath("race_torn.lts");
  std::remove(path.c_str());
  constexpr size_t kSpan = 8;

  auto writer = StoreWriter::Create(path, RaceOptions());
  ASSERT_TRUE(writer.ok());
  size_t appended = 0;
  // The 6th chunk write tears mid-frame, exactly the kill -9 crash model.
  FailPoints::Arm("store_write", 6);
  for (size_t c = 0; c < 10; ++c) {
    std::vector<double> values;
    for (size_t i = 0; i < kSpan; ++i) {
      values.push_back(ExpectedValue(c * kSpan + i));
    }
    const Status s = (*writer)->Append(
        TimeSeries(static_cast<int64_t>(c * kSpan) * 60, 60,
                   std::move(values)));
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kInternal);
      break;
    }
    ++appended;
  }
  FailPoints::DisarmAll();
  ASSERT_EQ(appended, 5u);  // Five chunks landed before the tear.

  // Salvage-open while the writer object (and its fd) is still alive — the
  // reader must see the five complete chunks and drop the torn sixth.
  auto reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_FALSE((*reader)->clean());
  EXPECT_EQ((*reader)->total_points(), 5 * kSpan);
  CheckPrefix(**reader, 10 * kSpan);
}

}  // namespace
}  // namespace lossyts::store
