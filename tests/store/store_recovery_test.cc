// Crash recovery: the "store_write" failpoint kills ingestion mid-chunk
// (leaving a genuinely torn half-frame on disk) or between the last chunk
// and the footer; reopening must salvage exactly the complete chunks and
// drop the torn tail (src/store/writer.cc, src/store/reader.cc).

#include <gtest/gtest.h>

#include <cstdio>

#include "core/failpoint.h"
#include "core/rng.h"
#include "store/reader.h"
#include "store/writer.h"

namespace lossyts::store {
namespace {

class StoreRecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::DisarmAll(); }
};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

TimeSeries MakeWalk(size_t n) {
  Rng rng(42);
  std::vector<double> v(n);
  double x = 100.0;
  for (auto& val : v) {
    x += 0.1 * rng.Normal();
    val = x;
  }
  return TimeSeries(0, 60, std::move(v));
}

TEST_F(StoreRecoveryTest, KilledMidChunkSalvagesCompletePrefix) {
  const TimeSeries series = MakeWalk(2500);  // 5 chunks of 500.
  StoreOptions options;
  options.chunk_span = 500;
  const std::string path = TempPath("crash_mid.lts");

  // Die on the third chunk write: two complete frames plus half of the
  // third reach the file.
  FailPoints::Arm("store_write", 3);
  auto writer = StoreWriter::Create(path, options);
  ASSERT_TRUE(writer.ok());
  Status append = (*writer)->Append(series);
  EXPECT_EQ(append.code(), StatusCode::kInternal);
  // The writer is dead: every later call refuses instead of corrupting.
  EXPECT_EQ((*writer)->Append(series).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*writer)->Finish().code(), StatusCode::kFailedPrecondition);
  FailPoints::DisarmAll();

  auto reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_FALSE((*reader)->clean());
  ASSERT_EQ((*reader)->chunks().size(), 2u);
  EXPECT_EQ((*reader)->total_points(), 1000u);
  Result<TimeSeries> salvaged = (*reader)->ReadAll();
  ASSERT_TRUE(salvaged.ok());
  // The salvaged prefix reconstructs the same values a clean ingestion of
  // the full series would have produced for those chunks.
  const std::string clean_path = TempPath("crash_ref.lts");
  auto ref_writer = StoreWriter::Create(clean_path, options);
  ASSERT_TRUE(ref_writer.ok());
  ASSERT_TRUE((*ref_writer)->Append(series).ok());
  ASSERT_TRUE((*ref_writer)->Finish().ok());
  auto ref_reader = StoreReader::Open(clean_path);
  ASSERT_TRUE(ref_reader.ok());
  Result<TimeSeries> reference = (*ref_reader)->ReadAll();
  ASSERT_TRUE(reference.ok());
  for (size_t i = 0; i < salvaged->size(); ++i) {
    EXPECT_EQ(salvaged->values()[i], reference->values()[i]) << i;
  }
}

TEST_F(StoreRecoveryTest, KilledBeforeFooterSalvagesEveryChunk) {
  const TimeSeries series = MakeWalk(1000);  // 2 chunks + epilogue hit.
  StoreOptions options;
  options.chunk_span = 500;
  const std::string path = TempPath("crash_footer.lts");
  FailPoints::Arm("store_write", 3);  // Hits 1-2 are chunks; 3 the epilogue.
  auto writer = StoreWriter::Create(path, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(series).ok());
  EXPECT_EQ((*writer)->Finish().code(), StatusCode::kInternal);
  FailPoints::DisarmAll();

  auto reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE((*reader)->clean());
  EXPECT_EQ((*reader)->total_points(), 1000u);  // Nothing lost but the index.
}

TEST_F(StoreRecoveryTest, ReingestAfterCrashProducesACleanStore) {
  const TimeSeries series = MakeWalk(1200);
  StoreOptions options;
  options.chunk_span = 400;
  const std::string path = TempPath("crash_reingest.lts");
  FailPoints::Arm("store_write", 2);
  {
    auto writer = StoreWriter::Create(path, options);
    ASSERT_TRUE(writer.ok());
    EXPECT_FALSE((*writer)->Append(series).ok());
  }
  FailPoints::DisarmAll();
  // Create() truncates: the torn file is simply replaced.
  auto writer = StoreWriter::Create(path, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(series).ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  auto reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE((*reader)->clean());
  EXPECT_EQ((*reader)->total_points(), 1200u);
}

TEST_F(StoreRecoveryTest, FirstChunkTornSalvagesAnEmptyStore) {
  StoreOptions options;
  options.chunk_span = 100;
  const std::string path = TempPath("crash_first.lts");
  FailPoints::Arm("store_write", 1);
  auto writer = StoreWriter::Create(path, options);
  ASSERT_TRUE(writer.ok());
  EXPECT_FALSE((*writer)->Append(MakeWalk(250)).ok());
  FailPoints::DisarmAll();

  auto reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_FALSE((*reader)->clean());
  EXPECT_EQ((*reader)->total_points(), 0u);
  Result<TimeSeries> empty = (*reader)->ReadAll();
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->size(), 0u);
  EXPECT_EQ((*reader)->ReadPoint(0).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace lossyts::store
