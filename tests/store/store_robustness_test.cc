// Store-format fuzzing through the conform mutation battery: every
// structured mutant of a valid store image must either fail with a Status
// or answer self-consistently — never crash, never silently mis-answer
// (src/conform/mutate.cc, GenerateStoreMutants/CheckStoreMutant).

#include <gtest/gtest.h>

#include <fstream>

#include "conform/mutate.h"
#include "core/rng.h"
#include "store/reader.h"
#include "store/writer.h"

namespace lossyts::conform {
namespace {

std::vector<uint8_t> BuildStoreImage(const std::vector<std::string>& codecs,
                                     size_t n) {
  Rng rng(21);
  std::vector<double> v(n);
  double x = 40.0;
  for (auto& val : v) {
    x += 0.1 * rng.Normal();
    val = x;
  }
  const std::string path = ::testing::TempDir() + "mutant_base.lts";
  store::StoreOptions options;
  options.chunk_span = 300;
  options.codecs = codecs;
  auto writer = store::StoreWriter::Create(path, options);
  EXPECT_TRUE(writer.ok());
  EXPECT_TRUE((*writer)->Append(TimeSeries(0, 60, std::move(v))).ok());
  EXPECT_TRUE((*writer)->Finish().ok());
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.is_open());
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(file)),
                              std::istreambuf_iterator<char>());
}

TEST(StoreRobustnessTest, ValidImagePassesTheCheckItself) {
  const std::vector<uint8_t> image = BuildStoreImage({"PMC"}, 1000);
  Mutant identity{"identity", image};
  std::optional<OracleFailure> failure = CheckStoreMutant(identity);
  EXPECT_FALSE(failure.has_value())
      << failure->oracle << ": " << failure->detail;
}

TEST(StoreRobustnessTest, EveryStructuredMutantIsHandled) {
  // Multi-codec image: PMC chunks exercise the pushdown consistency drill,
  // GORILLA chunks the prefix-decode path.
  const std::vector<uint8_t> image =
      BuildStoreImage({"PMC", "GORILLA"}, 1500);
  const std::vector<Mutant> mutants = GenerateStoreMutants(image, 77, 32);
  ASSERT_GT(mutants.size(), 40u);
  size_t checked = 0;
  for (const Mutant& mutant : mutants) {
    std::optional<OracleFailure> failure = CheckStoreMutant(mutant);
    EXPECT_FALSE(failure.has_value())
        << "mutant '" << mutant.kind << "': " << failure->oracle << " — "
        << failure->detail;
    ++checked;
  }
  EXPECT_EQ(checked, mutants.size());
}

TEST(StoreRobustnessTest, MutantBatteryIsDeterministic) {
  const std::vector<uint8_t> image = BuildStoreImage({"SWING"}, 800);
  const std::vector<Mutant> a = GenerateStoreMutants(image, 5, 8);
  const std::vector<Mutant> b = GenerateStoreMutants(image, 5, 8);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].blob, b[i].blob);
  }
  // A different seed must change at least the random tail of the battery.
  const std::vector<Mutant> c = GenerateStoreMutants(image, 6, 8);
  bool any_difference = false;
  for (size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    if (a[i].blob != c[i].blob) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(StoreRobustnessTest, TruncationMutantsSalvageConsistently) {
  const std::vector<uint8_t> image = BuildStoreImage({"SZ"}, 900);
  for (const Mutant& mutant : GenerateStoreMutants(image, 1, 0)) {
    if (mutant.kind.rfind("truncate", 0) != 0) continue;
    // Truncations may legitimately open as a salvaged prefix; the check
    // must still hold them to the self-consistency contract.
    std::optional<OracleFailure> failure = CheckStoreMutant(mutant);
    EXPECT_FALSE(failure.has_value())
        << mutant.kind << ": " << failure->detail;
  }
}

}  // namespace
}  // namespace lossyts::conform
