// Segment-pushdown aggregate queries: equivalence against the full-decode
// reference path, error-bound honesty against the raw data, and
// byte-identity across thread counts (src/store/query.h).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/rng.h"
#include "core/split.h"
#include "data/datasets.h"
#include "store/query.h"
#include "store/reader.h"
#include "store/writer.h"

namespace lossyts::store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::unique_ptr<StoreReader> Ingest(const TimeSeries& series,
                                    const StoreOptions& options,
                                    const std::string& name) {
  const std::string path = TempPath(name);
  auto writer = StoreWriter::Create(path, options);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_TRUE((*writer)->Append(series).ok());
  EXPECT_TRUE((*writer)->Finish().ok());
  auto reader = StoreReader::Open(path);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  return std::move(*reader);
}

constexpr AggregateKind kAllKinds[] = {
    AggregateKind::kMin, AggregateKind::kMax, AggregateKind::kSum,
    AggregateKind::kCount, AggregateKind::kMean};

double RawAggregate(const std::vector<double>& v, AggregateKind kind) {
  double sum = 0.0, mn = v[0], mx = v[0];
  for (double x : v) {
    sum += x;
    if (x < mn) mn = x;
    if (x > mx) mx = x;
  }
  switch (kind) {
    case AggregateKind::kMin: return mn;
    case AggregateKind::kMax: return mx;
    case AggregateKind::kSum: return sum;
    case AggregateKind::kCount: return static_cast<double>(v.size());
    case AggregateKind::kMean: return sum / static_cast<double>(v.size());
  }
  return 0.0;
}

// The core acceptance check: on every paper dataset's test split, each
// pushdown aggregate must (a) agree with the full-decode reference to fp
// accumulation accuracy and (b) sit within its self-reported error bound of
// the aggregate over the RAW (pre-compression) values.
TEST(StoreQueryTest, PushdownMatchesDecodeAndBoundsOnPaperDatasets) {
  for (const std::string& dataset_name : data::DatasetNames()) {
    data::DatasetOptions data_options;
    data_options.length_fraction = 0.02;
    Result<data::Dataset> dataset =
        data::MakeDataset(dataset_name, data_options);
    ASSERT_TRUE(dataset.ok()) << dataset_name;
    Result<TrainValTest> split = SplitSeries(dataset->series);
    ASSERT_TRUE(split.ok());
    const TimeSeries& test = split->test;

    for (const char* codec : {"PMC", "SWING"}) {
      StoreOptions options;
      options.error_bound = 0.05;
      options.chunk_span = 256;
      options.codecs = {codec};
      auto reader = Ingest(test, options,
                           dataset_name + "_" + codec + "_query.lts");
      for (AggregateKind kind : kAllKinds) {
        Result<AggregateResult> pushed = AggregateRange(
            *reader, kind, test.start_timestamp(), reader->last_timestamp());
        ASSERT_TRUE(pushed.ok())
            << dataset_name << " " << codec << " "
            << AggregateKindName(kind) << ": " << pushed.status().ToString();
        AggregateOptions no_pushdown;
        no_pushdown.allow_pushdown = false;
        Result<AggregateResult> decoded =
            AggregateRange(*reader, kind, test.start_timestamp(),
                           reader->last_timestamp(), no_pushdown);
        ASSERT_TRUE(decoded.ok());
        EXPECT_GT(pushed->pushdown_chunks, 0u);
        EXPECT_EQ(pushed->decoded_chunks, 0u);
        EXPECT_EQ(decoded->pushdown_chunks, 0u);
        EXPECT_EQ(pushed->count, decoded->count);
        // MIN/MAX are exact segment-endpoint values — bit-identical to the
        // decode path; SUM/MEAN differ only by accumulation order.
        if (kind == AggregateKind::kMin || kind == AggregateKind::kMax ||
            kind == AggregateKind::kCount) {
          EXPECT_EQ(pushed->value, decoded->value)
              << dataset_name << " " << codec << " "
              << AggregateKindName(kind);
        } else {
          EXPECT_NEAR(pushed->value, decoded->value,
                      1e-9 * std::max(1.0, std::abs(decoded->value)))
              << dataset_name << " " << codec << " "
              << AggregateKindName(kind);
        }
        const double raw = RawAggregate(test.values(), kind);
        EXPECT_LE(std::abs(pushed->value - raw),
                  pushed->error_bound +
                      1e-9 * std::max(1.0, std::abs(raw)))
            << dataset_name << " " << codec << " " << AggregateKindName(kind)
            << ": answer " << pushed->value << " raw " << raw << " bound "
            << pushed->error_bound;
      }
    }
  }
}

TEST(StoreQueryTest, SubrangeOffSegmentBoundaries) {
  Rng rng(3);
  std::vector<double> v(3000);
  double x = 50.0;
  for (auto& val : v) {
    x += 0.2 * rng.Normal();
    val = x;
  }
  const TimeSeries series(0, 10, std::move(v));
  StoreOptions options;
  options.chunk_span = 700;
  options.codecs = {"SWING"};
  auto reader = Ingest(series, options, "subrange.lts");
  // Ranges straddling chunk boundaries at odd offsets.
  // Endpoints deliberately off the 10 s grid (35, 7045) to exercise the
  // clamp; {30, 30} is a single on-grid point.
  const int64_t ranges[][2] = {{30, 30}, {0, 6990}, {6950, 7045},
                               {35, 23450}, {29990, 29990}};
  for (const auto& r : ranges) {
    for (AggregateKind kind : kAllKinds) {
      Result<AggregateResult> pushed =
          AggregateRange(*reader, kind, r[0], r[1]);
      ASSERT_TRUE(pushed.ok());
      AggregateOptions no_pushdown;
      no_pushdown.allow_pushdown = false;
      Result<AggregateResult> decoded =
          AggregateRange(*reader, kind, r[0], r[1], no_pushdown);
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(pushed->count, decoded->count);
      EXPECT_NEAR(pushed->value, decoded->value,
                  1e-9 * std::max(1.0, std::abs(decoded->value)))
          << "[" << r[0] << ", " << r[1] << "] "
          << AggregateKindName(kind);
    }
  }
}

TEST(StoreQueryTest, ResultsAreByteIdenticalAcrossJobs) {
  Rng rng(9);
  std::vector<double> v(5000);
  for (auto& val : v) val = rng.Normal();
  const TimeSeries series(0, 60, std::move(v));
  StoreOptions options;
  options.chunk_span = 128;
  auto reader = Ingest(series, options, "qjobs.lts");
  for (AggregateKind kind : kAllKinds) {
    AggregateOptions reference;
    reference.jobs = 1;
    Result<AggregateResult> base = AggregateRange(
        *reader, kind, 0, reader->last_timestamp(), reference);
    ASSERT_TRUE(base.ok());
    for (int jobs : {2, 4, 8}) {
      reader->ClearChunkCache();
      AggregateOptions parallel;
      parallel.jobs = jobs;
      Result<AggregateResult> got = AggregateRange(
          *reader, kind, 0, reader->last_timestamp(), parallel);
      ASSERT_TRUE(got.ok());
      // Bit-identical, not merely close: partials merge in canonical order.
      EXPECT_EQ(0, std::memcmp(&base->value, &got->value, sizeof(double)))
          << AggregateKindName(kind) << " jobs=" << jobs;
      EXPECT_EQ(0, std::memcmp(&base->error_bound, &got->error_bound,
                               sizeof(double)));
      EXPECT_EQ(base->count, got->count);
    }
  }
}

TEST(StoreQueryTest, LosslessChunksReportZeroErrorBound) {
  Rng rng(5);
  std::vector<double> v(1000);
  for (auto& val : v) val = rng.Normal();
  const TimeSeries series(0, 60, std::move(v));
  StoreOptions options;
  options.codecs = {"GORILLA"};
  auto reader = Ingest(series, options, "lossless_eb.lts");
  Result<AggregateResult> sum = AggregateRange(
      *reader, AggregateKind::kSum, 0, reader->last_timestamp());
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->error_bound, 0.0);
  EXPECT_NEAR(sum->value, RawAggregate(series.values(), AggregateKind::kSum),
              1e-9);
}

TEST(StoreQueryTest, EmptySelectionSemantics) {
  auto reader = Ingest(TimeSeries(1000, 60, {1.0, 2.0, 3.0}), StoreOptions(),
                       "qempty.lts");
  // A range before the data: COUNT and SUM are 0, MIN/MAX/MEAN undefined.
  for (AggregateKind kind :
       {AggregateKind::kCount, AggregateKind::kSum}) {
    Result<AggregateResult> got = AggregateRange(*reader, kind, 0, 500);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->value, 0.0);
    EXPECT_EQ(got->count, 0u);
  }
  for (AggregateKind kind : {AggregateKind::kMin, AggregateKind::kMax,
                             AggregateKind::kMean}) {
    EXPECT_EQ(AggregateRange(*reader, kind, 0, 500).status().code(),
              StatusCode::kOutOfRange);
  }
}

TEST(StoreQueryTest, AggregateStoresMatchesPerStoreQueries) {
  std::vector<std::unique_ptr<StoreReader>> readers;
  std::vector<const StoreReader*> pointers;
  for (int i = 0; i < 3; ++i) {
    Rng rng(100 + static_cast<uint64_t>(i));
    std::vector<double> v(2000);
    double x = 10.0 * (i + 1);
    for (auto& val : v) {
      x += 0.1 * rng.Normal();
      val = x;
    }
    StoreOptions options;
    options.chunk_span = 300;
    readers.push_back(Ingest(TimeSeries(0, 60, std::move(v)), options,
                             "multi_" + std::to_string(i) + ".lts"));
    pointers.push_back(readers.back().get());
  }
  const int64_t t0 = 500 * 60;
  const int64_t t1 = 1500 * 60;
  for (AggregateKind kind : kAllKinds) {
    AggregateOptions options;
    options.jobs = 4;
    Result<std::vector<AggregateResult>> fanned =
        AggregateStores(pointers, kind, t0, t1, options);
    ASSERT_TRUE(fanned.ok());
    ASSERT_EQ(fanned->size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
      Result<AggregateResult> single =
          AggregateRange(*pointers[i], kind, t0, t1);
      ASSERT_TRUE(single.ok());
      EXPECT_EQ(0, std::memcmp(&(*fanned)[i].value, &single->value,
                               sizeof(double)))
          << AggregateKindName(kind) << " store " << i;
      EXPECT_EQ((*fanned)[i].count, single->count);
    }
  }
}

TEST(StoreQueryTest, ParseAggregateKindRoundTrips) {
  for (AggregateKind kind : kAllKinds) {
    Result<AggregateKind> parsed =
        ParseAggregateKind(AggregateKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseAggregateKind("AVERAGE").ok());
  EXPECT_FALSE(ParseAggregateKind("mean").ok());
}

}  // namespace
}  // namespace lossyts::store
