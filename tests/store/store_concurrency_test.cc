// Concurrency suite for the chunk store, run under TSan by tools/ci.sh:
// many threads hammering one reader's cache, point reads, range scans and
// pushdown queries concurrently. Correctness assertions double as the
// determinism check — every thread must see identical bytes.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "store/query.h"
#include "store/reader.h"
#include "store/writer.h"

namespace lossyts::store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::unique_ptr<StoreReader> MakeStore(const std::string& name,
                                       size_t n, uint32_t span) {
  Rng rng(11);
  std::vector<double> v(n);
  double x = 10.0;
  for (auto& val : v) {
    x += 0.05 * rng.Normal();
    val = x;
  }
  StoreOptions options;
  options.chunk_span = span;
  const std::string path = TempPath(name);
  auto writer = StoreWriter::Create(path, options);
  EXPECT_TRUE(writer.ok());
  EXPECT_TRUE((*writer)->Append(TimeSeries(0, 60, std::move(v))).ok());
  EXPECT_TRUE((*writer)->Finish().ok());
  auto reader = StoreReader::Open(path);
  EXPECT_TRUE(reader.ok());
  return std::move(*reader);
}

TEST(StoreConcurrencyTest, ParallelRangeScansAreIdentical) {
  auto reader = MakeStore("conc_range.lts", 6000, 256);
  Result<TimeSeries> reference = reader->ReadAll(1);
  ASSERT_TRUE(reference.ok());
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      // Every thread scans with internal parallelism too (jobs = 2), so the
      // chunk cache sees nested concurrent access.
      Result<TimeSeries> got = reader->ReadAll(2);
      if (!got.ok() || got->size() != reference->size() ||
          std::memcmp(got->values().data(), reference->values().data(),
                      reference->size() * sizeof(double)) != 0) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Every decode was either a hit or a miss; the counters saw all of them.
  EXPECT_GT(reader->cache_hits() + reader->cache_misses(), 0u);
}

TEST(StoreConcurrencyTest, MixedReadersShareOneCache) {
  auto reader = MakeStore("conc_mixed.lts", 4000, 128);
  Result<TimeSeries> reference = reader->ReadAll(1);
  ASSERT_TRUE(reference.ok());
  reader->ClearChunkCache();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 200; ++i) {
        const size_t g = static_cast<size_t>(rng.UniformInt(4000));
        Result<double> point =
            reader->ReadPoint(static_cast<int64_t>(g) * 60);
        if (!point.ok() || *point != reference->values()[g]) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Two more threads run pushdown aggregates over moving windows while the
  // point readers race the cache.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        const int64_t t0 = (i * 37 % 2000) * 60;
        const int64_t t1 = t0 + 1000 * 60;
        Result<AggregateResult> got =
            AggregateRange(*reader, AggregateKind::kSum, t0, t1);
        if (!got.ok()) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(StoreConcurrencyTest, AggregateStoresFanOutIsDeterministic) {
  std::vector<std::unique_ptr<StoreReader>> readers;
  std::vector<const StoreReader*> pointers;
  for (int i = 0; i < 4; ++i) {
    readers.push_back(
        MakeStore("conc_fan_" + std::to_string(i) + ".lts", 3000, 200));
    pointers.push_back(readers.back().get());
  }
  AggregateOptions sequential;
  sequential.jobs = 1;
  Result<std::vector<AggregateResult>> reference = AggregateStores(
      pointers, AggregateKind::kMean, 0, 3000 * 60, sequential);
  ASSERT_TRUE(reference.ok());
  for (int jobs : {2, 8}) {
    for (auto& reader : readers) reader->ClearChunkCache();
    AggregateOptions parallel;
    parallel.jobs = jobs;
    Result<std::vector<AggregateResult>> got = AggregateStores(
        pointers, AggregateKind::kMean, 0, 3000 * 60, parallel);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), reference->size());
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_EQ(0, std::memcmp(&(*got)[i].value, &(*reference)[i].value,
                               sizeof(double)))
          << "store " << i << " jobs " << jobs;
    }
  }
}

}  // namespace
}  // namespace lossyts::store
