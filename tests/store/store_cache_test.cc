// The decoded-chunk LRU cache: capacity enforcement, recency-order
// eviction, hit/miss counters, and immediate shrink on capacity changes
// (src/store/reader.cc).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/time_series.h"
#include "store/format.h"
#include "store/reader.h"
#include "store/writer.h"

namespace lossyts::store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

// `chunks` chunks of 4 points each, lossless so decode results are exact.
std::unique_ptr<StoreReader> ManyChunkStore(const std::string& name,
                                            size_t chunks) {
  StoreOptions options;
  options.chunk_span = 4;
  options.codecs = {"GORILLA"};
  std::vector<double> values;
  for (size_t i = 0; i < chunks * 4; ++i) {
    values.push_back(static_cast<double>(i) * 0.25 - 10.0);
  }
  const std::string path = TempPath(name);
  auto writer = StoreWriter::Create(path, options);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_TRUE((*writer)->Append(TimeSeries(0, 60, std::move(values))).ok());
  EXPECT_TRUE((*writer)->Finish().ok());
  auto reader = StoreReader::Open(path);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->chunks().size(), chunks);
  return std::move(*reader);
}

TEST(StoreCacheTest, CapacityBoundsTheCacheEvenAcrossAFullScan) {
  auto reader = ManyChunkStore("cache_cap.lts", 100);
  EXPECT_EQ(reader->chunk_cache_capacity(),
            StoreReader::kDefaultChunkCacheCapacity);
  auto all = reader->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->values().size(), 400u);
  // 100 distinct chunks decoded once each through a 64-entry cache.
  EXPECT_EQ(reader->cache_misses(), 100u);
  EXPECT_EQ(reader->cache_hits(), 0u);
  EXPECT_EQ(reader->cached_chunks(), StoreReader::kDefaultChunkCacheCapacity);
}

TEST(StoreCacheTest, ShrinkingTheCapacityEvictsImmediately) {
  auto reader = ManyChunkStore("cache_shrink.lts", 20);
  ASSERT_TRUE(reader->ReadAll().ok());
  EXPECT_EQ(reader->cached_chunks(), 20u);
  reader->SetChunkCacheCapacity(5);
  EXPECT_EQ(reader->chunk_cache_capacity(), 5u);
  EXPECT_EQ(reader->cached_chunks(), 5u);
  // The survivors are the five most recently decoded chunks (15..19): using
  // them is all hits, anything older is a fresh miss.
  const uint64_t misses_before = reader->cache_misses();
  for (size_t i = 15; i < 20; ++i) {
    ASSERT_TRUE(reader->DecodeChunkValues(i).ok());
  }
  EXPECT_EQ(reader->cache_misses(), misses_before);
  ASSERT_TRUE(reader->DecodeChunkValues(0).ok());
  EXPECT_EQ(reader->cache_misses(), misses_before + 1);
}

TEST(StoreCacheTest, EvictionFollowsRecencyNotInsertionOrder) {
  auto reader = ManyChunkStore("cache_lru.lts", 10);
  reader->SetChunkCacheCapacity(3);

  ASSERT_TRUE(reader->DecodeChunkValues(0).ok());  // miss
  ASSERT_TRUE(reader->DecodeChunkValues(1).ok());  // miss
  ASSERT_TRUE(reader->DecodeChunkValues(2).ok());  // miss
  ASSERT_TRUE(reader->DecodeChunkValues(0).ok());  // hit: 0 becomes MRU
  ASSERT_TRUE(reader->DecodeChunkValues(3).ok());  // miss: evicts 1, not 0
  EXPECT_EQ(reader->cached_chunks(), 3u);
  EXPECT_EQ(reader->cache_hits(), 1u);
  EXPECT_EQ(reader->cache_misses(), 4u);

  ASSERT_TRUE(reader->DecodeChunkValues(0).ok());  // hit: survived
  EXPECT_EQ(reader->cache_hits(), 2u);
  ASSERT_TRUE(reader->DecodeChunkValues(1).ok());  // miss: was evicted
  EXPECT_EQ(reader->cache_misses(), 5u);
  EXPECT_EQ(reader->cached_chunks(), 3u);

  // Decoded values are correct regardless of cache churn.
  auto chunk = reader->DecodeChunkValues(1);
  ASSERT_TRUE(chunk.ok());
  ASSERT_EQ((*chunk)->size(), 4u);
  EXPECT_EQ((**chunk)[0], 4 * 0.25 - 10.0);
}

TEST(StoreCacheTest, ClearAndPointReadsShareTheCounters) {
  auto reader = ManyChunkStore("cache_clear.lts", 6);
  ASSERT_TRUE(reader->ReadRange(0, 23 * 60).ok());
  EXPECT_EQ(reader->cache_misses(), 6u);
  reader->ClearChunkCache();
  EXPECT_EQ(reader->cached_chunks(), 0u);
  // Counters are monotone across a clear; the re-read misses again.
  ASSERT_TRUE(reader->ReadRange(0, 23 * 60).ok());
  EXPECT_EQ(reader->cache_misses(), 12u);
}

}  // namespace
}  // namespace lossyts::store
