// Chunk store round-trip: ingestion determinism, grid enforcement, point
// and range reads, and the open/salvage contract (src/store/).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

#include "compress/compressor.h"
#include "core/rng.h"
#include "store/format.h"
#include "store/reader.h"
#include "store/writer.h"

namespace lossyts::store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

TimeSeries MakeWalk(size_t n, uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 100.0;
  for (auto& val : v) {
    x += 0.1 * rng.Normal();
    val = x;
  }
  return TimeSeries(1000, 60, std::move(v));
}

std::vector<uint8_t> ReadBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.is_open()) << path;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(file)),
                              std::istreambuf_iterator<char>());
}

std::unique_ptr<StoreReader> Ingest(const TimeSeries& series,
                                    const StoreOptions& options,
                                    const std::string& name) {
  const std::string path = TempPath(name);
  auto writer = StoreWriter::Create(path, options);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_TRUE((*writer)->Append(series).ok());
  EXPECT_TRUE((*writer)->Finish().ok());
  auto reader = StoreReader::Open(path);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  return std::move(*reader);
}

TEST(StoreTest, RoundTripEveryCodecWithinBound) {
  const TimeSeries series = MakeWalk(2500);
  for (const char* codec : {"PMC", "SWING", "SZ", "GORILLA", "CHIMP"}) {
    StoreOptions options;
    options.error_bound = 0.05;
    options.chunk_span = 512;
    options.codecs = {codec};
    auto reader =
        Ingest(series, options, std::string("rt_") + codec + ".lts");
    EXPECT_TRUE(reader->clean());
    ASSERT_EQ(reader->total_points(), series.size());
    EXPECT_EQ(reader->start_timestamp(), series.start_timestamp());
    EXPECT_EQ(reader->interval_seconds(), series.interval_seconds());
    Result<TimeSeries> out = reader->ReadAll();
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    const bool lossless =
        std::string(codec) == "GORILLA" || std::string(codec) == "CHIMP";
    for (size_t i = 0; i < series.size(); ++i) {
      const double v = series.values()[i];
      const double v_hat = out->values()[i];
      if (lossless) {
        EXPECT_EQ(v, v_hat) << codec << " point " << i;
      } else {
        const compress::Allowance a = compress::RelativeAllowance(v, 0.05);
        EXPECT_GE(v_hat, a.lo) << codec << " point " << i;
        EXPECT_LE(v_hat, a.hi) << codec << " point " << i;
      }
    }
  }
}

TEST(StoreTest, IngestionIsByteDeterministic) {
  const TimeSeries series = MakeWalk(3000);
  StoreOptions options;  // Default multi-codec trial.
  const std::string a = TempPath("det_a.lts");
  const std::string b = TempPath("det_b.lts");
  for (const std::string& path : {a, b}) {
    auto writer = StoreWriter::Create(path, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(series).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  EXPECT_EQ(ReadBytes(a), ReadBytes(b));
}

TEST(StoreTest, TailChunkIsShorter) {
  StoreOptions options;
  options.chunk_span = 1000;
  auto reader = Ingest(MakeWalk(2500), options, "tail.lts");
  ASSERT_EQ(reader->chunks().size(), 3u);
  EXPECT_EQ(reader->chunks()[0].num_points, 1000u);
  EXPECT_EQ(reader->chunks()[1].num_points, 1000u);
  EXPECT_EQ(reader->chunks()[2].num_points, 500u);
}

TEST(StoreTest, MultiAppendMustContinueTheGrid) {
  const std::string path = TempPath("grid.lts");
  auto writer = StoreWriter::Create(path, StoreOptions());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(TimeSeries(0, 60, {1.0, 2.0, 3.0})).ok());
  // Continuation at the expected next timestamp is fine.
  ASSERT_TRUE((*writer)->Append(TimeSeries(180, 60, {4.0, 5.0})).ok());
  // A gap is InvalidArgument, as is an interval change.
  EXPECT_EQ((*writer)->Append(TimeSeries(600, 60, {6.0})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*writer)->Append(TimeSeries(300, 30, {6.0})).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE((*writer)->Finish().ok());
  auto reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->total_points(), 5u);
}

TEST(StoreTest, CreateValidatesOptions) {
  StoreOptions bad_bound;
  bad_bound.error_bound = 1.5;
  EXPECT_EQ(StoreWriter::Create(TempPath("bad1.lts"), bad_bound)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  StoreOptions bad_span;
  bad_span.chunk_span = 0;
  EXPECT_EQ(
      StoreWriter::Create(TempPath("bad2.lts"), bad_span).status().code(),
      StatusCode::kInvalidArgument);
  StoreOptions bad_codec;
  bad_codec.codecs = {"NOPE"};
  EXPECT_FALSE(StoreWriter::Create(TempPath("bad3.lts"), bad_codec).ok());
}

TEST(StoreTest, OpenMissingFileIsNotFound) {
  EXPECT_EQ(StoreReader::Open(TempPath("nonexistent.lts")).status().code(),
            StatusCode::kNotFound);
}

TEST(StoreTest, ReadPointMatchesReadAllOnEveryCodecPath) {
  const TimeSeries series = MakeWalk(1500);
  for (const char* codec : {"PMC", "SWING", "SZ", "GORILLA", "CHIMP"}) {
    StoreOptions options;
    options.chunk_span = 400;
    options.codecs = {codec};
    auto reader =
        Ingest(series, options, std::string("pt_") + codec + ".lts");
    Result<TimeSeries> all = reader->ReadAll();
    ASSERT_TRUE(all.ok());
    // Probe chunk starts, chunk ends, and interior points.
    for (size_t g : {size_t{0}, size_t{1}, size_t{399}, size_t{400},
                     size_t{799}, size_t{800}, size_t{1234}, size_t{1499}}) {
      const int64_t t =
          series.start_timestamp() +
          static_cast<int64_t>(g) * series.interval_seconds();
      Result<double> point = reader->ReadPoint(t);
      ASSERT_TRUE(point.ok()) << codec << " index " << g;
      // Exactly the decoder's value: partial paths (segment walk, prefix
      // decode) must be bit-identical to the full decode.
      EXPECT_EQ(*point, all->values()[g]) << codec << " index " << g;
    }
  }
}

TEST(StoreTest, ReadPointRejectsOffGridAndOutOfRange) {
  auto reader = Ingest(MakeWalk(100), StoreOptions(), "ptedge.lts");
  EXPECT_EQ(reader->ReadPoint(1000 - 60).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(reader->ReadPoint(1000 + 100 * 60).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(reader->ReadPoint(1030).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StoreTest, ReadRangeClampsAndMatchesSlice) {
  const TimeSeries series = MakeWalk(2000);
  StoreOptions options;
  options.chunk_span = 300;
  auto reader = Ingest(series, options, "range.lts");
  Result<TimeSeries> all = reader->ReadAll();
  ASSERT_TRUE(all.ok());
  // A range cutting across three chunks, off both chunk boundaries.
  const int64_t t0 = 1000 + 350 * 60;
  const int64_t t1 = 1000 + 950 * 60;
  Result<TimeSeries> range = reader->ReadRange(t0, t1);
  ASSERT_TRUE(range.ok());
  ASSERT_EQ(range->size(), 601u);
  EXPECT_EQ(range->start_timestamp(), t0);
  for (size_t i = 0; i < range->size(); ++i) {
    EXPECT_EQ(range->values()[i], all->values()[350 + i]);
  }
  // Clamping: a range past both ends is the whole series.
  Result<TimeSeries> clamped =
      reader->ReadRange(INT64_MIN / 2, INT64_MAX / 2);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped->values(), all->values());
  // Empty intersection yields an empty series, not an error.
  Result<TimeSeries> empty = reader->ReadRange(0, 500);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->size(), 0u);
  // Inverted ranges are an argument error.
  EXPECT_EQ(reader->ReadRange(2000, 1000).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StoreTest, ReadRangeIsIdenticalAcrossJobs) {
  StoreOptions options;
  options.chunk_span = 128;
  auto reader = Ingest(MakeWalk(4000), options, "jobs.lts");
  Result<TimeSeries> sequential = reader->ReadAll(1);
  ASSERT_TRUE(sequential.ok());
  for (int jobs : {2, 4, 8}) {
    reader->ClearChunkCache();
    Result<TimeSeries> parallel = reader->ReadAll(jobs);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->size(), sequential->size());
    EXPECT_EQ(0, std::memcmp(parallel->values().data(),
                             sequential->values().data(),
                             sequential->size() * sizeof(double)))
        << "jobs=" << jobs;
  }
}

TEST(StoreTest, ChunkCacheCountsHitsAndMisses) {
  StoreOptions options;
  options.chunk_span = 500;
  options.codecs = {"SZ"};  // SZ point reads go through the decode cache.
  auto reader = Ingest(MakeWalk(1000), options, "cache.lts");
  EXPECT_EQ(reader->cache_hits(), 0u);
  EXPECT_EQ(reader->cache_misses(), 0u);
  ASSERT_TRUE(reader->ReadPoint(1000).ok());  // Cold: decodes chunk 0.
  EXPECT_EQ(reader->cache_misses(), 1u);
  ASSERT_TRUE(reader->ReadPoint(1060).ok());  // Warm: same chunk.
  EXPECT_EQ(reader->cache_hits(), 1u);
  ASSERT_TRUE(reader->ReadAll().ok());  // Chunk 0 hit, chunk 1 miss.
  EXPECT_EQ(reader->cache_hits(), 2u);
  EXPECT_EQ(reader->cache_misses(), 2u);
}

TEST(StoreTest, TruncatedFileSalvagesThePrefix) {
  const TimeSeries series = MakeWalk(2500);
  StoreOptions options;
  options.chunk_span = 500;
  const std::string path = TempPath("trunc.lts");
  {
    auto writer = StoreWriter::Create(path, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(series).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  std::vector<uint8_t> bytes = ReadBytes(path);
  auto clean = StoreReader::OpenBytes(bytes);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ((*clean)->chunks().size(), 5u);
  // Cut inside the fourth chunk's payload: the footer and index are gone,
  // the fourth frame is torn, and the first three salvage.
  const size_t cut = static_cast<size_t>((*clean)->chunks()[3].offset) + 17;
  std::vector<uint8_t> torn(bytes.begin(), bytes.begin() + cut);
  auto salvaged = StoreReader::OpenBytes(std::move(torn));
  ASSERT_TRUE(salvaged.ok()) << salvaged.status().ToString();
  EXPECT_FALSE((*salvaged)->clean());
  EXPECT_EQ((*salvaged)->chunks().size(), 3u);
  EXPECT_EQ((*salvaged)->total_points(), 1500u);
  Result<TimeSeries> prefix = (*salvaged)->ReadAll();
  ASSERT_TRUE(prefix.ok());
  Result<TimeSeries> full = (*clean)->ReadAll();
  ASSERT_TRUE(full.ok());
  for (size_t i = 0; i < prefix->size(); ++i) {
    EXPECT_EQ(prefix->values()[i], full->values()[i]);
  }
}

TEST(StoreTest, CompleteFileWithCorruptChunkIsRejected) {
  const std::string path = TempPath("corrupt.lts");
  {
    auto writer = StoreWriter::Create(path, StoreOptions());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeWalk(2000)).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  std::vector<uint8_t> bytes = ReadBytes(path);
  auto clean = StoreReader::OpenBytes(bytes);
  ASSERT_TRUE(clean.ok());
  // Flip a payload byte: the footer still claims completeness, so strict
  // mode must reject rather than salvage around it.
  bytes[static_cast<size_t>((*clean)->chunks()[0].offset) + 20] ^= 0x01;
  EXPECT_EQ(StoreReader::OpenBytes(std::move(bytes)).status().code(),
            StatusCode::kCorruption);
}

TEST(StoreTest, LosslessCodecsAcceptNonFiniteValues) {
  std::vector<double> v(600, 1.0);
  v[10] = std::nan("");
  v[500] = std::numeric_limits<double>::infinity();
  const TimeSeries series(0, 60, std::move(v));
  StoreOptions options;
  options.chunk_span = 256;  // Mixed: chunk 0/1 non-finite, chunk 2 finite.
  auto reader = Ingest(series, options, "nonfinite.lts");
  Result<TimeSeries> out = reader->ReadAll();
  ASSERT_TRUE(out.ok());
  // Non-finite chunks must have fallen back to a lossless codec and
  // round-trip bit-exactly.
  EXPECT_TRUE(std::isnan(out->values()[10]));
  EXPECT_EQ(out->values()[500], std::numeric_limits<double>::infinity());
  EXPECT_TRUE(IsLosslessAlgorithm(reader->chunks()[0].algorithm));
}

}  // namespace
}  // namespace lossyts::store
