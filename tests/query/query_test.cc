// Tests for the vectorized multi-series query layer (src/query): grouping
// modes and pooled-pair semantics, aggregate pushdown and merge rules, the
// byte-identical determinism contract across --jobs, range clamping, and
// the failpoint-driven fetch-failure path.

#include "query/query.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/failpoint.h"
#include "core/time_series.h"
#include "store/format.h"
#include "store/writer.h"

namespace lossyts::query {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::DisarmAll(); }
};

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  const std::string cmd = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
  return dir;
}

TimeSeries Ramp(int64_t start, int points, double base, double step) {
  std::vector<double> values(static_cast<size_t>(points));
  for (int i = 0; i < points; ++i) {
    values[static_cast<size_t>(i)] = base + step * i;
  }
  return TimeSeries(start, 60, std::move(values));
}

void WriteStoreWith(const std::string& path, const TimeSeries& series,
                    const std::string& codec, double error_bound) {
  store::StoreOptions options;
  options.codecs = {codec};
  options.error_bound = error_bound;
  Result<std::unique_ptr<store::StoreWriter>> writer =
      store::StoreWriter::Create(path, options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Append(series).ok());
  ASSERT_TRUE((*writer)->Finish().ok());
}

void WriteStore(const std::string& path, const TimeSeries& series) {
  // Lossless: metric values stay exact.
  WriteStoreWith(path, series, "GORILLA", 0.1);
}

/// Two prefix groups ("east_a", "east_b", "west_c") with known residuals:
/// predicted = actual + delta, so pooled MAE per group is |delta| exactly.
std::string BuildCatalog(const std::string& name) {
  const std::string dir = TempDir(name);
  WriteStore(dir + "/east_a.lts", Ramp(0, 200, 10.0, 0.25));
  WriteStore(dir + "/east_a.pred.lts", Ramp(0, 200, 10.5, 0.25));  // +0.5
  WriteStore(dir + "/east_b.lts", Ramp(0, 200, 20.0, 0.25));
  WriteStore(dir + "/east_b.pred.lts", Ramp(0, 200, 19.0, 0.25));  // -1.0
  WriteStore(dir + "/west_c.lts", Ramp(0, 200, 30.0, 0.25));
  WriteStore(dir + "/west_c.pred.lts", Ramp(0, 200, 30.25, 0.25));  // +0.25
  return dir;
}

// --- In-memory grouped evaluation -----------------------------------------

TEST_F(QueryTest, GroupModesPartitionAndPoolPairs) {
  const TimeSeries a = Ramp(0, 100, 1.0, 0.0);
  const TimeSeries a_pred = Ramp(0, 100, 2.0, 0.0);  // residual +1
  const TimeSeries b = Ramp(0, 100, 5.0, 0.0);
  const TimeSeries b_pred = Ramp(0, 100, 8.0, 0.0);  // residual +3
  const std::vector<SeriesInput> inputs = {
      {"east_a", &a, &a_pred},
      {"west_b", &b, &b_pred},
  };

  QueryOptions options;
  options.metrics = {"mae", "bias"};
  Result<QueryResult> by_series = EvaluateGroupedSeries(inputs, options);
  ASSERT_TRUE(by_series.ok()) << by_series.status().ToString();
  ASSERT_EQ(by_series->rows.size(), 2u);
  EXPECT_EQ(by_series->rows[0].group, "east_a");
  EXPECT_DOUBLE_EQ(by_series->rows[0].metrics[0], 1.0);
  EXPECT_EQ(by_series->rows[1].group, "west_b");
  EXPECT_DOUBLE_EQ(by_series->rows[1].metrics[0], 3.0);

  options.group_by = GroupMode::kAll;
  Result<QueryResult> pooled = EvaluateGroupedSeries(inputs, options);
  ASSERT_TRUE(pooled.ok());
  ASSERT_EQ(pooled->rows.size(), 1u);
  EXPECT_EQ(pooled->rows[0].group, "all");
  EXPECT_EQ(pooled->rows[0].series_count, 2u);
  EXPECT_EQ(pooled->rows[0].points, 200u);
  // Pooled MAE over the concatenation, not an average of per-series MAEs
  // (here they coincide because the halves are equal length — bias pins the
  // pooling since (1 + 3) / 2 = 2).
  EXPECT_DOUBLE_EQ(pooled->rows[0].metrics[0], 2.0);
  EXPECT_DOUBLE_EQ(pooled->rows[0].metrics[1], 2.0);

  options.group_by = GroupMode::kPrefix;
  Result<QueryResult> by_prefix = EvaluateGroupedSeries(inputs, options);
  ASSERT_TRUE(by_prefix.ok());
  ASSERT_EQ(by_prefix->rows.size(), 2u);
  EXPECT_EQ(by_prefix->rows[0].group, "east");
  EXPECT_EQ(by_prefix->rows[1].group, "west");
}

TEST_F(QueryTest, MisalignedPairsFailByName) {
  const TimeSeries actual = Ramp(0, 50, 1.0, 0.1);
  const TimeSeries off_grid = TimeSeries(30, 60, std::vector<double>(50, 1.0));
  const TimeSeries wrong_interval =
      TimeSeries(0, 30, std::vector<double>(50, 1.0));
  QueryOptions options;
  options.metrics = {"mae"};

  const std::vector<SeriesInput> off = {{"sensor_x", &actual, &off_grid}};
  Result<QueryResult> off_result = EvaluateGroupedSeries(off, options);
  ASSERT_FALSE(off_result.ok());
  EXPECT_NE(off_result.status().ToString().find("sensor_x"),
            std::string::npos);

  const std::vector<SeriesInput> bad = {
      {"sensor_y", &actual, &wrong_interval}};
  Result<QueryResult> bad_result = EvaluateGroupedSeries(bad, options);
  ASSERT_FALSE(bad_result.ok());
  EXPECT_NE(bad_result.status().ToString().find("sensor_y"),
            std::string::npos);
}

TEST_F(QueryTest, ValidationRejectsBadSpecsUpFront) {
  const TimeSeries a = Ramp(0, 10, 1.0, 0.0);
  const std::vector<SeriesInput> inputs = {{"a", &a, &a}};
  QueryOptions options;
  // Neither metrics nor aggregates.
  EXPECT_FALSE(EvaluateGroupedSeries(inputs, options).ok());
  // Interval metrics have no store representation.
  options.metrics = {"coverage"};
  Result<QueryResult> interval = EvaluateGroupedSeries(inputs, options);
  ASSERT_FALSE(interval.ok());
  EXPECT_NE(interval.status().ToString().find("prediction intervals"),
            std::string::npos);
  // Inverted range.
  options.metrics = {"mae"};
  options.t0 = 100;
  options.t1 = 50;
  EXPECT_FALSE(EvaluateGroupedSeries(inputs, options).ok());
  // Prefix grouping needs a delimiter.
  options.t0 = 0;
  options.t1 = 1000;
  options.group_by = GroupMode::kPrefix;
  options.delimiter = "";
  EXPECT_FALSE(EvaluateGroupedSeries(inputs, options).ok());
}

TEST_F(QueryTest, MaseUsesPooledActualAsInsample) {
  // A non-constant actual makes the pooled in-sample scale well-defined.
  const TimeSeries actual = Ramp(0, 100, 1.0, 0.5);
  const TimeSeries predicted = Ramp(0, 100, 2.0, 0.5);
  const std::vector<SeriesInput> inputs = {{"a", &actual, &predicted}};
  QueryOptions options;
  options.metrics = {"mase"};
  Result<QueryResult> result = EvaluateGroupedSeries(inputs, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // MAE is 1.0; the lag-1 in-sample scale of the ramp is its step 0.5.
  EXPECT_DOUBLE_EQ(result->rows[0].metrics[0], 2.0);

  // A constant actual must surface MASE's contract error, naming the group.
  const TimeSeries flat = Ramp(0, 100, 3.0, 0.0);
  const std::vector<SeriesInput> flat_inputs = {{"flat", &flat, &flat}};
  Result<QueryResult> flat_result =
      EvaluateGroupedSeries(flat_inputs, options);
  ASSERT_FALSE(flat_result.ok());
  EXPECT_NE(flat_result.status().ToString().find("constant in-sample"),
            std::string::npos);
}

// --- Store-directory queries ----------------------------------------------

TEST_F(QueryTest, StoreDirGroupedMetricsMatchKnownResiduals) {
  const std::string dir = BuildCatalog("query_known");
  QueryOptions options;
  options.metrics = {"mae", "bias"};
  options.group_by = GroupMode::kPrefix;
  Result<QueryResult> result = QueryStoreDir(dir, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0].group, "east");
  EXPECT_EQ(result->rows[0].series_count, 2u);
  EXPECT_EQ(result->rows[0].points, 400u);
  // Pooled over +0.5 and -1.0 residuals: MAE 0.75, bias -0.25.
  EXPECT_DOUBLE_EQ(result->rows[0].metrics[0], 0.75);
  EXPECT_DOUBLE_EQ(result->rows[0].metrics[1], -0.25);
  EXPECT_EQ(result->rows[1].group, "west");
  EXPECT_DOUBLE_EQ(result->rows[1].metrics[0], 0.25);
  // Metric queries decode; they must not report pushdown.
  EXPECT_GT(result->decoded_chunks, 0u);
  EXPECT_EQ(result->pushdown_chunks, 0u);
}

TEST_F(QueryTest, StoreDirOutputIsByteIdenticalAcrossJobs) {
  const std::string dir = BuildCatalog("query_jobs");
  QueryOptions options;
  options.metrics = {"mae", "rmse", "smape", "pinball@0.9"};
  options.aggregates = {"MEAN", "COUNT"};
  options.group_by = GroupMode::kPrefix;
  std::string reference;
  for (int jobs : {1, 2, 7}) {
    options.jobs = jobs;
    Result<QueryResult> result = QueryStoreDir(dir, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const std::string text = FormatQueryResult(*result);
    if (reference.empty()) {
      reference = text;
    } else {
      EXPECT_EQ(text, reference) << "jobs=" << jobs;
    }
  }
  EXPECT_NE(reference.find("group,series,points,MEAN,COUNT,mae"),
            std::string::npos);
}

TEST_F(QueryTest, AggregateOnlyQueriesUsePushdownAndMergeCorrectly) {
  // PMC (a segment-model codec) so the aggregates are answered on segment
  // models; the error bound sets the tolerance of every value check.
  const double kEb = 0.01;
  const std::string dir = TempDir("query_agg");
  WriteStoreWith(dir + "/east_a.lts", Ramp(0, 200, 10.0, 0.25), "PMC", kEb);
  WriteStoreWith(dir + "/east_b.lts", Ramp(0, 200, 20.0, 0.25), "PMC", kEb);
  WriteStoreWith(dir + "/west_c.lts", Ramp(0, 200, 30.0, 0.25), "PMC", kEb);
  QueryOptions options;
  options.aggregates = {"MIN", "MAX", "MEAN", "SUM", "COUNT"};
  options.group_by = GroupMode::kAll;
  Result<QueryResult> result = QueryStoreDir(dir, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  const GroupRow& row = result->rows[0];
  EXPECT_EQ(row.series_count, 3u);
  EXPECT_EQ(row.points, 600u);
  // Ramps: east_a 10..59.75, east_b 20..69.75, west_c 30..79.75. The codec
  // bound is relative pointwise (ε·|value|), so every tolerance scales with
  // the magnitude it checks.
  EXPECT_NEAR(row.aggregates[0], 10.0, kEb * 10.0);    // min of mins
  EXPECT_NEAR(row.aggregates[1], 79.75, kEb * 79.75);  // max of maxes
  const double sum = (10.0 + 59.75) / 2 * 200 + (20.0 + 69.75) / 2 * 200 +
                     (30.0 + 79.75) / 2 * 200;
  EXPECT_NEAR(row.aggregates[3], sum, kEb * sum);
  EXPECT_NEAR(row.aggregates[2], sum / 600.0, kEb * sum / 600.0);
  EXPECT_DOUBLE_EQ(row.aggregates[4], 600.0);
  // Aggregates-only never decodes a chunk.
  EXPECT_EQ(result->decoded_chunks, 0u);
  EXPECT_GT(result->pushdown_chunks, 0u);
}

TEST_F(QueryTest, TimeRangeClampsBeforePooling) {
  const std::string dir = BuildCatalog("query_range");
  QueryOptions options;
  options.metrics = {"mae"};
  options.group_by = GroupMode::kAll;
  options.t0 = 60 * 100;  // Second half only: 100 points per series.
  options.t1 = 60 * 199;
  Result<QueryResult> result = QueryStoreDir(dir, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].points, 300u);
  // A range past the data selects nothing: per-group error, not silence.
  options.t0 = 60 * 1000;
  options.t1 = 60 * 2000;
  Result<QueryResult> empty = QueryStoreDir(dir, options);
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().ToString().find("in the requested time range"),
            std::string::npos);
}

TEST_F(QueryTest, MatchFilterAndMissingPairsFailClearly) {
  const std::string dir = BuildCatalog("query_match");
  QueryOptions options;
  options.metrics = {"mae"};
  options.match = "west";
  Result<QueryResult> west = QueryStoreDir(dir, options);
  ASSERT_TRUE(west.ok()) << west.status().ToString();
  ASSERT_EQ(west->rows.size(), 1u);
  EXPECT_EQ(west->rows[0].group, "west_c");

  // A series without its forecast pair is a NotFound naming the series.
  WriteStore(dir + "/orphan.lts", Ramp(0, 50, 1.0, 0.1));
  options.match = "orphan";
  Result<QueryResult> orphan = QueryStoreDir(dir, options);
  ASSERT_FALSE(orphan.ok());
  EXPECT_EQ(orphan.status().code(), StatusCode::kNotFound);
  EXPECT_NE(orphan.status().ToString().find("orphan"), std::string::npos);

  // No stores at all (filter excludes everything) is NotFound too.
  options.match = "nonexistent";
  EXPECT_EQ(QueryStoreDir(dir, options).status().code(),
            StatusCode::kNotFound);
}

TEST_F(QueryTest, FetchFailpointSurfacesFirstErrorInCanonicalOrder) {
  const std::string dir = BuildCatalog("query_failpoint");
  QueryOptions options;
  options.metrics = {"mae"};
  options.jobs = 4;
  // Fire on the very first fetch: canonical order sorts east_a first, so
  // the surfaced error is deterministic no matter the pool interleaving.
  FailPoints::Arm("query_fetch", 1);
  Result<QueryResult> result = QueryStoreDir(dir, options);
  ASSERT_FALSE(result.ok());
  FailPoints::DisarmAll();

  // A disarmed re-run (the kill/resume drill) succeeds and still produces
  // the canonical bytes.
  Result<QueryResult> resumed = QueryStoreDir(dir, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  options.jobs = 1;
  Result<QueryResult> sequential = QueryStoreDir(dir, options);
  ASSERT_TRUE(sequential.ok());
  EXPECT_EQ(FormatQueryResult(*resumed), FormatQueryResult(*sequential));
}

TEST_F(QueryTest, ParseGroupModeRoundTripsAndRejectsUnknown) {
  for (const char* name : {"series", "prefix", "all"}) {
    Result<GroupMode> mode = ParseGroupMode(name);
    ASSERT_TRUE(mode.ok()) << name;
    EXPECT_STREQ(GroupModeName(*mode), name);
  }
  EXPECT_FALSE(ParseGroupMode("bogus").ok());
}

}  // namespace
}  // namespace lossyts::query
