// Reproduces the paper's RQ3 story on one dataset: simple models that learn
// broad patterns (Arima) degrade gracefully as the error bound grows, while
// models relying on short-term fluctuations lose accuracy faster.
//
// Usage: ./build/examples/model_resilience [dataset]   (default ETTm2)

#include <cstdio>
#include <string>
#include <vector>

#include "compress/pipeline.h"
#include "core/split.h"
#include "data/datasets.h"
#include "eval/report.h"
#include "eval/scenario.h"
#include "forecast/registry.h"

using namespace lossyts;

int main(int argc, char** argv) {
  const std::string dataset_name = argc > 1 ? argv[1] : "ETTm2";
  data::DatasetOptions data_options;
  data_options.length_fraction = 0.05;
  Result<data::Dataset> dataset =
      data::MakeDataset(dataset_name, data_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Result<TrainValTest> split = SplitSeries(dataset->series);
  if (!split.ok()) return 1;

  const std::vector<std::string> models = {"Arima", "GBoost", "DLinear",
                                           "Transformer"};
  const std::vector<double> error_bounds = {0.05, 0.1, 0.2, 0.4};

  // Pre-transform the test split with PMC at each bound.
  Result<std::unique_ptr<compress::Compressor>> pmc =
      compress::MakeCompressor("PMC");
  if (!pmc.ok()) return 1;
  std::vector<TimeSeries> transformed;
  for (double eb : error_bounds) {
    Result<compress::PipelineResult> result =
        compress::RunPipeline(**pmc, split->test, eb);
    if (!result.ok()) return 1;
    transformed.push_back(std::move(result->decompressed));
  }

  std::printf("Model resilience to PMC compression on %s (TFE per bound)\n\n",
              dataset_name.c_str());
  std::vector<std::string> header = {"model", "baseline NRMSE"};
  for (double eb : error_bounds) {
    header.push_back("TFE@" + eval::FormatDouble(eb, 2));
  }
  eval::TableWriter table(std::move(header));

  forecast::ForecastConfig config;
  config.season_length = dataset->season_length;
  for (const std::string& name : models) {
    Result<std::unique_ptr<forecast::Forecaster>> model =
        forecast::MakeForecaster(name, config);
    if (!model.ok()) return 1;
    std::fprintf(stderr, "training %s...\n", name.c_str());
    if (Status s = (*model)->Fit(split->train, split->val); !s.ok()) {
      std::fprintf(stderr, "fit %s: %s\n", name.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    Result<std::vector<double>> baseline = eval::EvaluateOnTest(
        **model, split->test, nullptr, config.input_length, config.horizon);
    if (!baseline.ok()) return 1;
    const double baseline_nrmse = (*baseline)[kMetricNrmse];

    std::vector<std::string> row = {name,
                                    eval::FormatDouble(baseline_nrmse, 4)};
    for (const TimeSeries& t : transformed) {
      Result<std::vector<double>> lossy = eval::EvaluateOnTest(
          **model, split->test, &t, config.input_length, config.horizon);
      if (!lossy.ok()) return 1;
      row.push_back(eval::FormatDouble(
          eval::Tfe((*lossy)[kMetricNrmse], baseline_nrmse), 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nPositive TFE = accuracy lost to compression. The paper's RQ3 "
      "pattern to look for: the model with the best baseline NRMSE pays the "
      "largest TFE as the bound grows, while weaker-baseline models barely "
      "move — higher accuracy is bought with the subtle patterns that "
      "compression distorts first.\n");
  return 0;
}
