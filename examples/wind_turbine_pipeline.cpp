// The paper's motivating scenario (§1): a wind turbine lossy-compresses its
// 2-second active-power signal before sending it to the cloud, where a
// pre-trained forecasting model predicts future output for maintenance
// decisions. This example walks the whole edge-to-cloud pipeline and selects
// the compressor/error-bound combination that meets a bandwidth budget with
// the smallest forecasting-accuracy cost.
//
// Run: ./build/examples/wind_turbine_pipeline

#include <cstdio>
#include <string>
#include <vector>

#include "compress/pipeline.h"
#include "core/split.h"
#include "data/datasets.h"
#include "eval/report.h"
#include "eval/scenario.h"
#include "forecast/registry.h"

using namespace lossyts;

int main() {
  data::DatasetOptions data_options;
  data_options.length_fraction = 0.05;
  Result<data::Dataset> wind = data::MakeDataset("Wind", data_options);
  if (!wind.ok()) return 1;
  Result<TrainValTest> split = SplitSeries(wind->series);
  if (!split.ok()) return 1;

  std::printf("Wind turbine: %zu active-power samples at 2 s intervals\n",
              wind->series.size());

  // Cloud side: a GBoost model trained on historical raw data.
  forecast::ForecastConfig config;
  config.season_length = wind->season_length;
  Result<std::unique_ptr<forecast::Forecaster>> model =
      forecast::MakeForecaster("GBoost", config);
  if (!model.ok()) return 1;
  if (Status s = (*model)->Fit(split->train, split->val); !s.ok()) return 1;

  Result<std::vector<double>> baseline = eval::EvaluateOnTest(
      **model, split->test, nullptr, config.input_length, config.horizon);
  if (!baseline.ok()) return 1;
  const double baseline_nrmse = (*baseline)[kMetricNrmse];
  std::printf("Baseline forecast NRMSE on raw telemetry: %.4f\n\n",
              baseline_nrmse);

  // Edge side: candidate compression settings.
  const double required_cr = 8.0;      // Bandwidth budget: at least 8x.
  const double tfe_tolerance = 0.10;   // Accept up to 10% accuracy loss.

  eval::TableWriter table(
      {"compressor", "eb", "CR", "TE(NRMSE)", "TFE", "verdict"});
  std::string best_choice;
  double best_cr = 0.0;
  for (const std::string& name : compress::LossyCompressorNames()) {
    Result<std::unique_ptr<compress::Compressor>> compressor =
        compress::MakeCompressor(name);
    if (!compressor.ok()) return 1;
    for (double eb : {0.05, 0.1, 0.2, 0.4}) {
      Result<compress::PipelineResult> result =
          compress::RunPipeline(**compressor, split->test, eb);
      if (!result.ok()) return 1;
      Result<std::vector<double>> lossy = eval::EvaluateOnTest(
          **model, split->test, &result->decompressed, config.input_length,
          config.horizon);
      if (!lossy.ok()) return 1;
      const double tfe =
          eval::Tfe((*lossy)[kMetricNrmse], baseline_nrmse);
      const bool meets_cr = result->compression_ratio >= required_cr;
      const bool meets_tfe = tfe <= tfe_tolerance;
      const char* verdict = meets_cr && meets_tfe ? "OK"
                            : meets_cr            ? "too lossy"
                                                  : "too little CR";
      table.AddRow({name, eval::FormatDouble(eb, 2),
                    eval::FormatDouble(result->compression_ratio, 1),
                    eval::FormatDouble(result->te_nrmse, 4),
                    eval::FormatDouble(tfe, 3), verdict});
      if (meets_cr && meets_tfe && result->compression_ratio > best_cr) {
        best_cr = result->compression_ratio;
        best_choice = name + " @ eb=" + eval::FormatDouble(eb, 2);
      }
    }
  }
  table.Print();
  if (!best_choice.empty()) {
    std::printf(
        "\nRecommended edge configuration: %s (CR %.1fx within the %.0f%% "
        "TFE tolerance)\n",
        best_choice.c_str(), best_cr, 100.0 * tfe_tolerance);
  } else {
    std::printf("\nNo configuration met the constraints; relax the budget.\n");
  }
  return 0;
}
