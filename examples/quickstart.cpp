// Quickstart: the LossyTS pipeline in one page.
//
// 1. Generate (or load) a time series.
// 2. Compress it with an error-bounded lossy compressor and measure CR/TE.
// 3. Train a forecasting model on the raw training split.
// 4. Compare forecasting accuracy with raw vs. decompressed inputs (TFE).
//
// Build: cmake --build build --target quickstart
// Run:   ./build/examples/quickstart

#include <cstdio>

#include "compress/pipeline.h"
#include "core/split.h"
#include "data/datasets.h"
#include "eval/scenario.h"
#include "forecast/registry.h"

using namespace lossyts;

int main() {
  // 1. A scaled-down replica of the ETTm1 electrical-transformer dataset.
  data::DatasetOptions data_options;
  data_options.length_fraction = 0.05;
  Result<data::Dataset> dataset = data::MakeDataset("ETTm1", data_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("Dataset %s: %zu points sampled every %d s\n",
              dataset->name.c_str(), dataset->series.size(),
              dataset->series.interval_seconds());

  Result<TrainValTest> split = SplitSeries(dataset->series);
  if (!split.ok()) return 1;

  // 2. Compress the test split with PMC at a 5% relative error bound.
  Result<std::unique_ptr<compress::Compressor>> pmc =
      compress::MakeCompressor("PMC");
  if (!pmc.ok()) return 1;
  Result<compress::PipelineResult> compressed =
      compress::RunPipeline(**pmc, split->test, /*error_bound=*/0.05);
  if (!compressed.ok()) {
    std::fprintf(stderr, "compress: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "PMC @ eb=0.05: compression ratio %.1fx (vs gzip'd raw), "
      "TE(NRMSE) %.4f, %zu segments\n",
      compressed->compression_ratio, compressed->te_nrmse,
      compressed->segment_count);

  // 3. Train DLinear on the raw training split (input 96 -> horizon 24).
  forecast::ForecastConfig config;
  config.season_length = dataset->season_length;
  Result<std::unique_ptr<forecast::Forecaster>> model =
      forecast::MakeForecaster("DLinear", config);
  if (!model.ok()) return 1;
  if (Status s = (*model)->Fit(split->train, split->val); !s.ok()) {
    std::fprintf(stderr, "fit: %s\n", s.ToString().c_str());
    return 1;
  }

  // 4. Forecast with raw vs. decompressed inputs; targets are always raw.
  // EvaluateOnTest returns one value per requested metric — the default
  // request is the paper's pinned four (r, rse, rmse, nrmse).
  Result<std::vector<double>> baseline = eval::EvaluateOnTest(
      **model, split->test, nullptr, config.input_length, config.horizon);
  Result<std::vector<double>> lossy = eval::EvaluateOnTest(
      **model, split->test, &compressed->decompressed, config.input_length,
      config.horizon);
  if (!baseline.ok() || !lossy.ok()) return 1;

  const double tfe =
      eval::Tfe((*lossy)[kMetricNrmse], (*baseline)[kMetricNrmse]);
  std::printf("Forecast NRMSE on raw inputs:          %.4f\n",
              (*baseline)[kMetricNrmse]);
  std::printf("Forecast NRMSE on decompressed inputs: %.4f\n",
              (*lossy)[kMetricNrmse]);
  std::printf("TFE = %+.2f%% (%s)\n", 100.0 * tfe,
              tfe <= 0.0 ? "compression even helped"
                         : "accuracy cost of compression");
  return 0;
}
