// Interactive-style explorer for the CR/TE trade-off of the three PEBLC
// compressors on any dataset — either one of the six built-in synthetic
// datasets or a user CSV ("timestamp,value" with a header).
//
// Usage:
//   ./build/examples/compression_explorer                # ETTm1 by default
//   ./build/examples/compression_explorer Weather
//   ./build/examples/compression_explorer path/to/series.csv

#include <cstdio>
#include <cstring>
#include <string>

#include "compress/pipeline.h"
#include "data/csv.h"
#include "data/datasets.h"
#include "eval/report.h"

using namespace lossyts;

namespace {

Result<TimeSeries> LoadInput(const std::string& arg) {
  // Try a built-in dataset name first, then fall back to a CSV path.
  for (const std::string& name : data::DatasetNames()) {
    if (name == arg) {
      data::DatasetOptions options;
      options.length_fraction = 0.125;
      Result<data::Dataset> dataset = data::MakeDataset(name, options);
      if (!dataset.ok()) return dataset.status();
      return dataset->series;
    }
  }
  return data::LoadCsv(arg);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string arg = argc > 1 ? argv[1] : "ETTm1";
  Result<TimeSeries> series = LoadInput(arg);
  if (!series.ok()) {
    std::fprintf(stderr, "cannot load '%s': %s\n", arg.c_str(),
                 series.status().ToString().c_str());
    std::fprintf(stderr,
                 "pass a dataset name (ETTm1, ETTm2, Solar, Weather, "
                 "ElecDem, Wind) or a CSV path\n");
    return 1;
  }
  Result<TimeSeries::Stats> stats = series->ComputeStats();
  if (!stats.ok()) return 1;
  std::printf(
      "Input '%s': %zu points, mean %.2f, rIQD %.0f%% "
      "(low rIQD ==> expect very high CRs, see paper §4.2)\n\n",
      arg.c_str(), series->size(), stats->mean, stats->riqd_percent);

  const size_t raw_gz = compress::RawGzipSize(*series);
  std::printf("gzip'd raw size: %zu bytes\n\n", raw_gz);

  eval::TableWriter table({"compressor", "eb", "CR", "TE(NRMSE)",
                           "max rel err", "segments"});
  for (const std::string& name : compress::LossyCompressorNames()) {
    Result<std::unique_ptr<compress::Compressor>> compressor =
        compress::MakeCompressor(name);
    if (!compressor.ok()) return 1;
    for (double eb : {0.01, 0.05, 0.1, 0.2, 0.4, 0.8}) {
      Result<compress::PipelineResult> result =
          compress::RunPipeline(**compressor, *series, eb);
      if (!result.ok()) {
        std::fprintf(stderr, "%s @ %.2f failed: %s\n", name.c_str(), eb,
                     result.status().ToString().c_str());
        return 1;
      }
      table.AddRow({name, eval::FormatDouble(eb, 2),
                    eval::FormatDouble(result->compression_ratio, 1),
                    eval::FormatDouble(result->te_nrmse, 4),
                    eval::FormatDouble(result->te_max_rel, 4),
                    std::to_string(result->segment_count)});
    }
  }
  // The lossless reference point.
  Result<std::unique_ptr<compress::Compressor>> gorilla =
      compress::MakeCompressor("GORILLA");
  if (!gorilla.ok()) return 1;
  Result<compress::PipelineResult> lossless =
      compress::RunPipeline(**gorilla, *series, 0.0);
  if (!lossless.ok()) return 1;
  table.AddRow({"GORILLA", "-",
                eval::FormatDouble(lossless->compression_ratio, 1), "0.0000",
                "0.0000", "-"});
  table.Print();

  std::printf(
      "\nReading guide: PMC wins CR at high bounds, SZ at low bounds, SWING "
      "trades CR for the gentlest forecasting impact (paper RQ1/RQ2).\n");
  return 0;
}
