// The paper's §5 "other analytics" direction, concretely: how does lossy
// compression affect change detection? (The cited Hollmig et al. study found
// that "accurate change detection is possible even on heavily compressed
// data", §6.3 — this bench reproduces that claim with our codecs.)
//
// A series with known level shifts is compressed at increasing bounds; CUSUM
// runs on the raw and the decompressed series and the detection F1 is
// compared.

#include <cstdio>

#include "analysis/change_detection.h"
#include "compress/pipeline.h"
#include "core/rng.h"
#include "eval/report.h"

using namespace lossyts;

int main() {
  // Ground truth: 6 level shifts in 6000 points, noisy background.
  Rng rng(11);
  const std::vector<size_t> truth = {900, 1800, 2700, 3600, 4500, 5400};
  std::vector<double> v(6000);
  double level = 40.0;
  size_t next = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (next < truth.size() && i == truth[next]) {
      level += (next % 2 == 0 ? 8.0 : -8.0);
      ++next;
    }
    v[i] = level + 0.8 * rng.Normal();
  }
  TimeSeries series(0, 60, std::move(v));

  analysis::CusumOptions naive;
  analysis::CusumOptions robust;
  robust.min_sigma = 0.5;  // Scale-aware noise floor (~1% of the level).

  auto f1_of = [&](const std::vector<double>& values,
                   const analysis::CusumOptions& options) -> double {
    Result<std::vector<size_t>> changes =
        analysis::DetectChanges(values, options);
    if (!changes.ok()) return -1.0;
    return analysis::ScoreDetections(*changes, truth, 40).f1;
  };

  std::printf(
      "=== Future work (§5): change detection on decompressed data ===\n\n");
  std::printf("raw series: F1 %.2f (naive sigma) / %.2f (floored sigma)\n\n",
              f1_of(series.values(), naive), f1_of(series.values(), robust));

  eval::TableWriter table(
      {"method", "eb", "CR", "F1 naive", "F1 floored sigma"});
  for (const std::string& method : compress::LossyCompressorNames()) {
    Result<std::unique_ptr<compress::Compressor>> codec =
        compress::MakeCompressor(method);
    if (!codec.ok()) return 1;
    for (double eb : {0.02, 0.05, 0.1, 0.3}) {
      Result<compress::PipelineResult> run =
          compress::RunPipeline(**codec, series, eb);
      if (!run.ok()) return 1;
      table.AddRow({method, eval::FormatDouble(eb, 2),
                    eval::FormatDouble(run->compression_ratio, 1),
                    eval::FormatDouble(
                        f1_of(run->decompressed.values(), naive), 2),
                    eval::FormatDouble(
                        f1_of(run->decompressed.values(), robust), 2)});
    }
  }
  table.Print();
  std::printf(
      "\nReading guide (three regimes): (1) while the error bound stays "
      "below the shift-to-level ratio (8/40 = 0.2 here), the shifts "
      "survive compression — but a *naively calibrated* detector still "
      "collapses, because compression flattens the local noise floor (the "
      "variance-collapse effect behind the paper's max_kl_shift finding, "
      "§4.3.3) and sigma-unit thresholds misfire; (2) with a scale-aware "
      "sigma floor, detection stays near the raw series' quality — "
      "Hollmig et al.'s conclusion (cited in §6.3) that change detection "
      "works on heavily compressed data when the detector is configured "
      "appropriately; (3) once the bound reaches the shift magnitude "
      "(eb 0.3 row), the codec may absorb the shift itself and no detector "
      "can recover it — the information is gone, which is exactly the "
      "fine-grained control PEBLC bounds are meant to give (§1).\n");
  return 0;
}
