// Reproduces Figure 5 and Table 4: which time-series characteristics best
// predict the impact of lossy compression on forecasting accuracy.
//
// Per (dataset, compressor, error bound) cell, the 42 characteristics are
// computed on raw vs. decompressed data; a GBoost model is trained on the
// characteristic changes to predict the cell's mean TFE, and exact TreeSHAP
// ranks the characteristics (Figure 5). Table 4 ranks them by Spearman
// correlation with TFE.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "analysis/correlation.h"
#include "analysis/gbm.h"
#include "analysis/treeshap.h"
#include "characteristics_common.h"
#include "eval/report.h"

using namespace lossyts;

int main(int argc, char** argv) {
  Result<std::vector<eval::GridRecord>> grid = bench::LoadBenchGrid(argc, argv);
  if (!grid.ok()) {
    std::fprintf(stderr, "grid: %s\n", grid.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[characteristics] computing 42 features per cell...\n");
  Result<std::vector<bench::CharacteristicCell>> cells =
      bench::BuildCharacteristicCells(*grid);
  if (!cells.ok()) {
    std::fprintf(stderr, "cells: %s\n", cells.status().ToString().c_str());
    return 1;
  }

  const std::vector<std::string>& names = features::FeatureNames();
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (const bench::CharacteristicCell& cell : *cells) {
    rows.push_back(cell.signed_rel_diff);
    targets.push_back(cell.mean_tfe);
  }

  // GBoost on characteristic changes -> TFE, explained with TreeSHAP.
  analysis::GradientBoostedTrees::Options gbm_options;
  gbm_options.num_trees = 60;
  gbm_options.subsample = 0.8;
  gbm_options.tree.max_depth = 3;
  gbm_options.tree.min_samples_leaf = 5;
  gbm_options.tree.min_samples_split = 10;
  analysis::GradientBoostedTrees gbm(gbm_options);
  if (Status s = gbm.Fit(rows, targets); !s.ok()) {
    std::fprintf(stderr, "gbm: %s\n", s.ToString().c_str());
    return 1;
  }
  double ss_res = 0.0;
  double ss_tot = 0.0;
  const double mean_tfe =
      std::accumulate(targets.begin(), targets.end(), 0.0) /
      static_cast<double>(targets.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const double pred = gbm.Predict(rows[i]);
    ss_res += (targets[i] - pred) * (targets[i] - pred);
    ss_tot += (targets[i] - mean_tfe) * (targets[i] - mean_tfe);
  }
  const double r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;

  Result<std::vector<double>> importance =
      analysis::MeanAbsoluteShap(gbm, rows, names.size());
  if (!importance.ok()) {
    std::fprintf(stderr, "shap: %s\n",
                 importance.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "=== Figure 5: top characteristics by mean |SHAP| (GBoost R^2 = %.2f, "
      "%zu cells) ===\n\n",
      r2, rows.size());
  std::vector<size_t> order(names.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (*importance)[a] > (*importance)[b];
  });
  eval::TableWriter shap_table({"rank", "characteristic", "mean |SHAP|"});
  for (size_t rank = 0; rank < 10; ++rank) {
    const size_t f = order[rank];
    shap_table.AddRow({std::to_string(rank + 1), names[f],
                       eval::FormatDouble((*importance)[f], 5)});
  }
  shap_table.Print();

  // Table 4: Spearman correlation of each characteristic change with TFE.
  std::printf(
      "\n=== Table 4: top characteristics by |Spearman correlation| to TFE "
      "===\n\n");
  std::vector<std::pair<double, size_t>> correlations;
  for (size_t f = 0; f < names.size(); ++f) {
    std::vector<double> column;
    for (const auto& row : rows) column.push_back(row[f]);
    Result<double> rho = analysis::SpearmanCorrelation(column, targets);
    if (rho.ok() && std::isfinite(*rho)) {
      correlations.push_back({*rho, f});
    }
  }
  std::sort(correlations.begin(), correlations.end(),
            [](const auto& a, const auto& b) {
              return std::abs(a.first) > std::abs(b.first);
            });
  eval::TableWriter corr_table({"rank", "characteristic", "correlation"});
  for (size_t rank = 0; rank < std::min<size_t>(10, correlations.size());
       ++rank) {
    corr_table.AddRow({std::to_string(rank + 1),
                       names[correlations[rank].second],
                       eval::FormatDouble(correlations[rank].first, 2)});
  }
  corr_table.Print();

  std::printf(
      "\nShape checks vs the paper: max_kl_shift appears in the top ranks "
      "of both lists with a *positive* correlation to TFE; the rest of the "
      "top-10 is dominated by the same families the paper finds — "
      "seasonality (seas_strength, seas_acf1, negative sign), flat_spots "
      "(positive), variance/mean, ACF/PACF aggregates and the Holt beta "
      "(negative) — cf. paper Table 4: max_kl_shift 0.74, seas_strength "
      "-0.58, flat_spots 0.57, diff1_acf1 -0.55, var -0.40, beta -0.37, "
      "crossing_points -0.34.\n");
  return 0;
}
