// Engineering microbenchmarks (google-benchmark): compression and
// decompression throughput of the four codecs and the gzip substrate. Not a
// paper table — the paper does not report speed — but a regression guard for
// the library itself.

#include <benchmark/benchmark.h>

#include "compress/gorilla.h"
#include "compress/pmc.h"
#include "compress/swing.h"
#include "compress/sz.h"
#include "core/rng.h"
#include "zip/gzip.h"

namespace lossyts {
namespace {

TimeSeries MakeSeries(size_t n) {
  Rng rng(42);
  std::vector<double> v(n);
  double x = 100.0;
  for (auto& val : v) {
    x += 0.1 * rng.Normal();
    val = x;
  }
  return TimeSeries(0, 60, std::move(v));
}

template <typename Codec>
void BM_Compress(benchmark::State& state) {
  const TimeSeries series = MakeSeries(static_cast<size_t>(state.range(0)));
  Codec codec;
  for (auto _ : state) {
    auto blob = codec.Compress(series, 0.05);
    benchmark::DoNotOptimize(blob);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

template <typename Codec>
void BM_RoundTrip(benchmark::State& state) {
  const TimeSeries series = MakeSeries(static_cast<size_t>(state.range(0)));
  Codec codec;
  auto blob = codec.Compress(series, 0.05);
  for (auto _ : state) {
    auto out = codec.Decompress(*blob);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_GzipCompress(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)));
  for (auto& b : data) b = static_cast<uint8_t>(rng.UniformInt(16));
  for (auto _ : state) {
    auto gz = zip::GzipCompress(data);
    benchmark::DoNotOptimize(gz);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

void BM_GzipDecompress(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)));
  for (auto& b : data) b = static_cast<uint8_t>(rng.UniformInt(16));
  const std::vector<uint8_t> gz = zip::GzipCompress(data);
  for (auto _ : state) {
    auto out = zip::GzipDecompress(gz);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

BENCHMARK(BM_Compress<compress::PmcCompressor>)->Arg(10000);
BENCHMARK(BM_Compress<compress::SwingCompressor>)->Arg(10000);
BENCHMARK(BM_Compress<compress::SzCompressor>)->Arg(10000);
BENCHMARK(BM_Compress<compress::GorillaCompressor>)->Arg(10000);
BENCHMARK(BM_RoundTrip<compress::PmcCompressor>)->Arg(10000);
BENCHMARK(BM_RoundTrip<compress::SwingCompressor>)->Arg(10000);
BENCHMARK(BM_RoundTrip<compress::SzCompressor>)->Arg(10000);
BENCHMARK(BM_RoundTrip<compress::GorillaCompressor>)->Arg(10000);
BENCHMARK(BM_GzipCompress)->Arg(1 << 16);
BENCHMARK(BM_GzipDecompress)->Arg(1 << 16);

}  // namespace
}  // namespace lossyts

BENCHMARK_MAIN();
