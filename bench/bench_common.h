#ifndef LOSSYTS_BENCH_BENCH_COMMON_H_
#define LOSSYTS_BENCH_BENCH_COMMON_H_

// Shared configuration for the per-table/per-figure bench binaries. Every
// forecasting bench uses the same GridOptions (and thus the same CSV cache),
// so the expensive model-training sweep runs once no matter which bench is
// executed first; likewise for the compression-only sweep.

#include <map>
#include <string>
#include <vector>

#include "compress/pipeline.h"
#include "eval/compression_sweep.h"
#include "eval/grid.h"

namespace lossyts::bench {

/// The canonical forecasting grid: all datasets/models/compressors, the 13
/// paper error bounds, two seeds, laptop-scale series (DESIGN.md scaling
/// note). ~5 minutes of one-time compute, cached to CSV afterwards.
inline eval::GridOptions DefaultGridOptions() {
  eval::GridOptions options;
  options.seeds = {1, 2};
  options.data.length_fraction = 0.05;
  options.verbose = true;
  return options;
}

/// The canonical compression sweep at the larger statistics-grade scale.
inline eval::SweepOptions DefaultSweepOptions() {
  eval::SweepOptions options;
  options.data.length_fraction = 0.125;
  options.verbose = true;
  return options;
}

/// Mean TFE per (dataset, compressor, error bound) across models and seeds.
inline std::map<std::string, std::vector<double>> GroupTfe(
    const std::vector<eval::GridRecord>& records,
    const std::string& dataset, const std::string& compressor) {
  std::map<std::string, std::vector<double>> by_eb;
  for (const eval::GridRecord& r : records) {
    if (r.dataset != dataset || r.compressor != compressor) continue;
    char key[32];
    std::snprintf(key, sizeof(key), "%.4f", r.error_bound);
    by_eb[key].push_back(r.tfe);
  }
  return by_eb;
}

}  // namespace lossyts::bench

#endif  // LOSSYTS_BENCH_BENCH_COMMON_H_
