#ifndef LOSSYTS_BENCH_BENCH_COMMON_H_
#define LOSSYTS_BENCH_BENCH_COMMON_H_

// Shared configuration for the per-table/per-figure bench binaries. Every
// forecasting bench uses the same GridOptions (and thus the same CSV cache),
// so the expensive model-training sweep runs once no matter which bench is
// executed first; likewise for the compression-only sweep.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "compress/pipeline.h"
#include "eval/compression_sweep.h"
#include "eval/grid.h"

namespace lossyts::bench {

/// The canonical forecasting grid: all datasets/models/compressors, the 13
/// paper error bounds, two seeds, laptop-scale series (DESIGN.md scaling
/// note). ~5 minutes of one-time compute, cached to CSV afterwards.
inline eval::GridOptions DefaultGridOptions() {
  eval::GridOptions options;
  options.seeds = {1, 2};
  options.data.length_fraction = 0.05;
  options.verbose = true;
  return options;
}

/// The canonical compression sweep at the larger statistics-grade scale.
inline eval::SweepOptions DefaultSweepOptions() {
  eval::SweepOptions options;
  options.data.length_fraction = 0.125;
  options.verbose = true;
  return options;
}

/// Cache flags shared by every bench:
///   --resume        salvage and resume a partial grid checkpoint (default)
///   --fresh         delete the checkpoint and recompute from scratch
///   --cache <path>  checkpoint location (default DefaultGridCachePath())
///   --jobs N        worker threads for the sweep (1 = sequential, 0 = all
///                   hardware threads); output is identical for every N
struct BenchFlags {
  bool fresh = false;
  std::string cache_path = eval::DefaultGridCachePath();
  int jobs = 1;
};

inline BenchFlags ParseBenchFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fresh") == 0) {
      flags.fresh = true;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      flags.fresh = false;
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      flags.cache_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      flags.jobs = std::atoi(argv[++i]);
    }
  }
  return flags;
}

/// Prints a one-line-per-cell failure report to stderr; quiet when clean.
inline void ReportGridFailures(const std::vector<eval::GridRecord>& records) {
  const std::vector<const eval::GridRecord*> failed =
      eval::FailedRecords(records);
  if (failed.empty()) return;
  std::fprintf(stderr, "[grid] %zu of %zu cells failed:\n", failed.size(),
               records.size());
  for (const eval::GridRecord* r : failed) {
    std::fprintf(stderr, "[grid]   %s/%s/%s eb=%g seed=%llu (attempts %d): %s\n",
                 r->dataset.c_str(), r->model.c_str(), r->compressor.c_str(),
                 r->error_bound, static_cast<unsigned long long>(r->seed),
                 r->attempts, r->error.c_str());
  }
}

/// Loads the canonical grid for a bench binary, honoring --resume / --fresh /
/// --cache / --jobs. Failed cells are reported to stderr and filtered out, so
/// the per-table aggregations below only ever see completed measurements.
inline Result<std::vector<eval::GridRecord>> LoadBenchGrid(int argc,
                                                           char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  if (flags.fresh) std::remove(flags.cache_path.c_str());
  eval::GridOptions options = DefaultGridOptions();
  options.jobs = flags.jobs;
  Result<std::vector<eval::GridRecord>> grid =
      eval::LoadOrRunGrid(options, flags.cache_path);
  if (!grid.ok()) return grid.status();
  ReportGridFailures(*grid);
  std::vector<eval::GridRecord> ok_records;
  ok_records.reserve(grid->size());
  for (eval::GridRecord& r : *grid) {
    if (!r.failed()) ok_records.push_back(std::move(r));
  }
  return ok_records;
}

/// Loads the canonical compression sweep for a bench binary, honoring
/// --fresh / --jobs (the sweep cache lives at DefaultSweepCachePath()).
inline Result<std::vector<eval::SweepRecord>> LoadBenchSweep(int argc,
                                                             char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  const std::string cache_path = eval::DefaultSweepCachePath();
  if (flags.fresh) std::remove(cache_path.c_str());
  eval::SweepOptions options = DefaultSweepOptions();
  options.jobs = flags.jobs;
  return eval::LoadOrRunSweep(options, cache_path);
}

/// Mean TFE per (dataset, compressor, error bound) across models and seeds.
inline std::map<std::string, std::vector<double>> GroupTfe(
    const std::vector<eval::GridRecord>& records,
    const std::string& dataset, const std::string& compressor) {
  std::map<std::string, std::vector<double>> by_eb;
  for (const eval::GridRecord& r : records) {
    if (r.dataset != dataset || r.compressor != compressor) continue;
    char key[32];
    std::snprintf(key, sizeof(key), "%.4f", r.error_bound);
    by_eb[key].push_back(r.tfe);
  }
  return by_eb;
}

}  // namespace lossyts::bench

#endif  // LOSSYTS_BENCH_BENCH_COMMON_H_
