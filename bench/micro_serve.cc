// Engineering microbench for the serve daemon: mixed append/read traffic
// from concurrent clients over the Unix socket, reporting ingest throughput
// and read-latency percentiles. Self-checking — it exits nonzero when
//
//   * any acked append is lost or any append fails,
//   * the p99 read latency breaches its floor
//     (LOSSYTS_MICRO_SERVE_P99_MS, default 250 ms), or
//   * query results are not byte-identical across the --jobs values
//     (ingest-pool width must never change what a client reads back).
//
// Usage: micro_serve [--jobs 1,2] [--writers 2] [--batches 40] [--points 32]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/daemon.h"

namespace {

using Clock = std::chrono::steady_clock;
using lossyts::serve::Client;
using lossyts::serve::Daemon;
using lossyts::serve::DaemonOptions;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t at = static_cast<size_t>(q * static_cast<double>(
                                                samples.size() - 1));
  return samples[at];
}

double ValueAt(int writer, size_t index) {
  return static_cast<double>(writer) * 1e4 +
         static_cast<double>(index) * 0.0625 - 3.0;
}

struct WorkloadResult {
  std::map<std::string, std::vector<double>> readback;
  std::vector<double> read_ms;
  double append_ops_per_s = 0.0;
  double points_per_s = 0.0;
  bool ok = true;
};

WorkloadResult RunWorkload(int jobs, int writers, int batches, int points) {
  WorkloadResult result;
  const std::string dir =
      "/tmp/lossyts_micro_serve_j" + std::to_string(jobs);
  {
    const std::string cmd = "rm -rf '" + dir + "'";
    if (std::system(cmd.c_str()) != 0) std::abort();
  }
  DaemonOptions options;
  options.dir = dir;
  options.shards = 2;
  options.jobs = jobs;
  options.shard.codecs = {"GORILLA"};
  options.shard.sync = false;  // Throughput mode; durability benches lie.
  auto daemon = Daemon::Start(options);
  if (!daemon.ok()) {
    std::fprintf(stderr, "micro_serve: daemon start failed: %s\n",
                 daemon.status().ToString().c_str());
    result.ok = false;
    return result;
  }

  std::vector<std::thread> threads;
  std::vector<int> append_failures(static_cast<size_t>(writers), 0);
  std::atomic<bool> writers_done{false};
  const Clock::time_point ingest_start = Clock::now();
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      auto client = Client::Connect((*daemon)->socket_path());
      if (!client.ok()) {
        append_failures[static_cast<size_t>(w)] = batches;
        return;
      }
      const std::string series = "bench-" + std::to_string(w);
      for (int b = 0; b < batches; ++b) {
        std::vector<double> values;
        for (int i = 0; i < points; ++i) {
          values.push_back(ValueAt(w, static_cast<size_t>(b * points + i)));
        }
        if (!(*client)
                 ->Append(series, static_cast<int64_t>(b) * points * 60, 60,
                          values)
                 .ok()) {
          ++append_failures[static_cast<size_t>(w)];
        }
      }
    });
  }
  // One roaming reader supplies the "mixed" in mixed traffic while the
  // writers are live; its latencies count toward the percentile pool.
  std::vector<double> live_read_ms;
  threads.emplace_back([&] {
    auto client = Client::Connect((*daemon)->socket_path());
    if (!client.ok()) return;
    int w = 0;
    while (!writers_done.load()) {
      const Clock::time_point start = Clock::now();
      auto read = (*client)->ReadRange("bench-" + std::to_string(w), 0,
                                       1LL << 40);
      if (read.ok() || read.status().code() == lossyts::StatusCode::kNotFound) {
        live_read_ms.push_back(MsSince(start));
      }
      w = (w + 1) % writers;
    }
  });
  for (int w = 0; w < writers; ++w) threads[static_cast<size_t>(w)].join();
  const double ingest_s = MsSince(ingest_start) / 1e3;
  writers_done.store(true);
  threads.back().join();

  const uint64_t total_ops =
      static_cast<uint64_t>(writers) * static_cast<uint64_t>(batches);
  result.append_ops_per_s = static_cast<double>(total_ops) / ingest_s;
  result.points_per_s = result.append_ops_per_s * points;
  for (int failures : append_failures) {
    if (failures > 0) {
      std::fprintf(stderr, "micro_serve: %d append failures\n", failures);
      result.ok = false;
    }
  }

  // Steady-state read phase: a fixed request count so the percentile pool
  // is comparable run to run.
  {
    auto client = Client::Connect((*daemon)->socket_path());
    if (!client.ok()) {
      result.ok = false;
      return result;
    }
    constexpr int kReads = 400;
    for (int i = 0; i < kReads; ++i) {
      const std::string series = "bench-" + std::to_string(i % writers);
      const Clock::time_point start = Clock::now();
      auto read = (*client)->ReadRange(series, 0, 1LL << 40);
      if (!read.ok()) {
        std::fprintf(stderr, "micro_serve: read failed: %s\n",
                     read.status().ToString().c_str());
        result.ok = false;
        break;
      }
      result.read_ms.push_back(MsSince(start));
    }
    result.read_ms.insert(result.read_ms.end(), live_read_ms.begin(),
                          live_read_ms.end());
    // The readback pool for the cross-jobs identity check.
    for (int w = 0; w < writers; ++w) {
      const std::string series = "bench-" + std::to_string(w);
      auto read = (*client)->ReadRange(series, 0, 1LL << 40);
      if (!read.ok()) {
        result.ok = false;
        continue;
      }
      result.readback[series] = read->values();
      const size_t expected =
          static_cast<size_t>(batches) * static_cast<size_t>(points);
      if (read->values().size() != expected) {
        std::fprintf(stderr, "micro_serve: %s has %zu points, expected %zu\n",
                     series.c_str(), read->values().size(), expected);
        result.ok = false;
      }
    }
    auto stats = (*client)->Stats();
    if (!stats.ok() || stats->failed_shards != 0) {
      std::fprintf(stderr, "micro_serve: unhealthy daemon after workload\n");
      result.ok = false;
    }
  }
  if (!(*daemon)->Stop().ok()) result.ok = false;
  return result;
}

int ParseIntFlag(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> jobs_values = {1, 2};
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs_values.clear();
      for (const char* p = argv[i + 1]; *p != '\0'; ++p) {
        if (*p >= '0' && *p <= '9') jobs_values.push_back(*p - '0');
      }
    }
  }
  const int writers = ParseIntFlag(argc, argv, "--writers", 2);
  const int batches = ParseIntFlag(argc, argv, "--batches", 40);
  const int points = ParseIntFlag(argc, argv, "--points", 32);
  double p99_floor_ms = 250.0;
  if (const char* env = std::getenv("LOSSYTS_MICRO_SERVE_P99_MS")) {
    if (std::atof(env) > 0) p99_floor_ms = std::atof(env);
  }

  bool ok = true;
  std::map<std::string, std::vector<double>> reference;
  int reference_jobs = 0;
  for (const int jobs : jobs_values) {
    WorkloadResult result = RunWorkload(jobs, writers, batches, points);
    ok = ok && result.ok;
    const double p50 = Percentile(result.read_ms, 0.50);
    const double p99 = Percentile(result.read_ms, 0.99);
    std::printf(
        "micro_serve jobs=%d  appends %.0f ops/s (%.0f points/s)  "
        "reads n=%zu p50=%.3fms p99=%.3fms\n",
        jobs, result.append_ops_per_s, result.points_per_s,
        result.read_ms.size(), p50, p99);
    if (p99 > p99_floor_ms) {
      std::fprintf(stderr,
                   "micro_serve: p99 read latency %.3fms breaches the "
                   "%.0fms floor\n",
                   p99, p99_floor_ms);
      ok = false;
    }
    if (reference.empty()) {
      reference = std::move(result.readback);
      reference_jobs = jobs;
    } else if (result.readback != reference) {
      std::fprintf(stderr,
                   "micro_serve: query results differ between --jobs %d and "
                   "--jobs %d\n",
                   reference_jobs, jobs);
      ok = false;
    }
  }
  if (ok) std::printf("micro_serve: OK (results identical across jobs)\n");
  return ok ? 0 : 1;
}
