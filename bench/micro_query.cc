// Engineering microbench for the grouped query layer: one directory of
// store pairs, the same aggregate query answered by query::QueryStoreDir
// (segment pushdown + thread-pool fan-out) and by a naive per-series
// full-decode loop. Self-checking — it exits nonzero when
//
//   * the fast path's aggregates diverge from the naive path's,
//   * metric-query output is not byte-identical across --jobs values, or
//   * the speedup over the naive loop falls below the acceptance floor
//     (LOSSYTS_MICRO_QUERY_SPEEDUP, default 3x).
//
// Usage: micro_query [--series N] [--points N] [--jobs N] [--reps N]
//
// PMC on a smooth signal keeps chunks segment-dense, so the aggregate-only
// query never decodes a chunk; the naive loop decodes everything — the gap
// this bench pins is exactly the pushdown win the query layer exists for.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "query/query.h"
#include "store/format.h"
#include "store/reader.h"
#include "store/writer.h"

namespace {

using Clock = std::chrono::steady_clock;
using lossyts::Result;
using lossyts::Status;
using lossyts::TimeSeries;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

int ParseIntFlag(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

/// Smooth slow sine with a per-series phase: PMC at a loose bound collapses
/// it to a handful of segments per chunk, which is what gives the pushdown
/// path something to win with.
TimeSeries MakeSeries(int index, int points) {
  std::vector<double> values(static_cast<size_t>(points));
  for (int i = 0; i < points; ++i) {
    values[static_cast<size_t>(i)] =
        100.0 + 20.0 * std::sin((static_cast<double>(i) / 512.0) +
                                static_cast<double>(index));
  }
  return TimeSeries(0, 60, std::move(values));
}

Status BuildStoreDir(const std::string& dir, int series, int points) {
  {
    const std::string cmd = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
    if (std::system(cmd.c_str()) != 0) {
      return Status::IoError("cannot reset " + dir);
    }
  }
  lossyts::store::StoreOptions options;
  options.codecs = {"PMC"};
  options.error_bound = 0.5;
  for (int s = 0; s < series; ++s) {
    const TimeSeries actual = MakeSeries(s, points);
    TimeSeries predicted = actual;
    for (const std::string& suffix : {std::string(""), std::string(".pred")}) {
      char name[64];
      std::snprintf(name, sizeof(name), "g%d_s%d%s.lts", s % 4, s,
                    suffix.c_str());
      Result<std::unique_ptr<lossyts::store::StoreWriter>> writer =
          lossyts::store::StoreWriter::Create(dir + "/" + name, options);
      if (!writer.ok()) return writer.status();
      if (Status st = (*writer)->Append(suffix.empty() ? actual : predicted);
          !st.ok()) {
        return st;
      }
      if (Status st = (*writer)->Finish(); !st.ok()) return st;
    }
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const int series = ParseIntFlag(argc, argv, "--series", 16);
  const int points = ParseIntFlag(argc, argv, "--points", 1 << 16);
  const int jobs = ParseIntFlag(argc, argv, "--jobs", 4);
  const int reps = ParseIntFlag(argc, argv, "--reps", 5);
  double speedup_floor = 3.0;
  if (const char* env = std::getenv("LOSSYTS_MICRO_QUERY_SPEEDUP")) {
    if (std::atof(env) > 0) speedup_floor = std::atof(env);
  }

  const std::string dir = "/tmp/lossyts_micro_query";
  if (Status s = BuildStoreDir(dir, series, points); !s.ok()) {
    std::fprintf(stderr, "micro_query: build failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  bool ok = true;

  // Fast path: aggregate-only grouped query (pushdown + fan-out). Best of
  // `reps` so a cold file cache does not decide the verdict.
  lossyts::query::QueryOptions agg_options;
  agg_options.aggregates = {"MIN", "MAX", "MEAN", "COUNT"};
  agg_options.group_by = lossyts::query::GroupMode::kAll;
  agg_options.jobs = jobs;
  double fast_ms = 0.0;
  lossyts::query::QueryResult fast;
  for (int r = 0; r < reps; ++r) {
    const Clock::time_point start = Clock::now();
    Result<lossyts::query::QueryResult> result =
        lossyts::query::QueryStoreDir(dir, agg_options);
    const double ms = MsSince(start);
    if (!result.ok()) {
      std::fprintf(stderr, "micro_query: query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (r == 0 || ms < fast_ms) fast_ms = ms;
    fast = std::move(*result);
  }
  if (fast.decoded_chunks != 0) {
    std::fprintf(stderr,
                 "micro_query: aggregate-only query decoded %llu chunks "
                 "(pushdown regression)\n",
                 static_cast<unsigned long long>(fast.decoded_chunks));
    ok = false;
  }

  // Naive path: open every store, decode everything single-threaded, fold
  // the same aggregates by hand.
  double naive_ms = 0.0;
  double naive_min = 0.0, naive_max = 0.0, naive_sum = 0.0;
  uint64_t naive_count = 0;
  for (int r = 0; r < reps; ++r) {
    const Clock::time_point start = Clock::now();
    naive_min = 0.0;
    naive_max = 0.0;
    naive_sum = 0.0;
    naive_count = 0;
    bool first = true;
    for (int s = 0; s < series; ++s) {
      char name[64];
      std::snprintf(name, sizeof(name), "g%d_s%d.lts", s % 4, s);
      Result<std::unique_ptr<lossyts::store::StoreReader>> reader =
          lossyts::store::StoreReader::Open(dir + "/" + name);
      if (!reader.ok()) {
        std::fprintf(stderr, "micro_query: open failed: %s\n",
                     reader.status().ToString().c_str());
        return 1;
      }
      Result<TimeSeries> all = (*reader)->ReadAll();
      if (!all.ok()) {
        std::fprintf(stderr, "micro_query: decode failed: %s\n",
                     all.status().ToString().c_str());
        return 1;
      }
      for (double v : all->values()) {
        if (first || v < naive_min) naive_min = v;
        if (first || v > naive_max) naive_max = v;
        first = false;
        naive_sum += v;
        ++naive_count;
      }
    }
    const double ms = MsSince(start);
    if (r == 0 || ms < naive_ms) naive_ms = ms;
  }

  // Cross-check: both paths computed the same catalog-wide aggregates.
  if (fast.rows.size() != 1) {
    std::fprintf(stderr, "micro_query: expected 1 group row, got %zu\n",
                 fast.rows.size());
    return 1;
  }
  const std::vector<double>& got = fast.rows[0].aggregates;
  const double want[] = {naive_min, naive_max,
                         naive_sum / static_cast<double>(naive_count),
                         static_cast<double>(naive_count)};
  const char* names[] = {"MIN", "MAX", "MEAN", "COUNT"};
  for (size_t i = 0; i < 4; ++i) {
    const double scale = std::max({1.0, std::abs(got[i]), std::abs(want[i])});
    if (!(std::abs(got[i] - want[i]) <= 1e-9 * scale)) {
      std::fprintf(stderr, "micro_query: %s mismatch: fast %.17g naive %.17g\n",
                   names[i], got[i], want[i]);
      ok = false;
    }
  }

  // Determinism: the grouped metric query formats byte-identically across
  // jobs widths.
  lossyts::query::QueryOptions metric_options;
  metric_options.metrics = {"mae", "rmse", "smape", "bias"};
  metric_options.group_by = lossyts::query::GroupMode::kPrefix;
  std::string reference;
  for (int j : {1, jobs}) {
    metric_options.jobs = j;
    Result<lossyts::query::QueryResult> result =
        lossyts::query::QueryStoreDir(dir, metric_options);
    if (!result.ok()) {
      std::fprintf(stderr, "micro_query: metric query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const std::string text = lossyts::query::FormatQueryResult(*result);
    if (reference.empty()) {
      reference = text;
    } else if (text != reference) {
      std::fprintf(stderr,
                   "micro_query: metric output differs between --jobs 1 and "
                   "--jobs %d\n",
                   j);
      ok = false;
    }
  }

  const double speedup = naive_ms / fast_ms;
  std::printf(
      "micro_query series=%d points=%d jobs=%d  pushdown %.3fms  "
      "naive %.3fms  speedup %.1fx (%llu chunks pushed down)\n",
      series, points, jobs, fast_ms, naive_ms, speedup,
      static_cast<unsigned long long>(fast.pushdown_chunks));
  if (speedup < speedup_floor) {
    std::fprintf(stderr,
                 "micro_query: speedup %.2fx breaches the %.1fx floor\n",
                 speedup, speedup_floor);
    ok = false;
  }
  if (ok) std::printf("micro_query: OK (fast path matches naive decode)\n");
  return ok ? 0 : 1;
}
