// Reproduces Figure 2: transformation error (NRMSE) and compression ratio
// per lossy compression method across the 13 error bounds and six datasets,
// with GORILLA's lossless CR as the horizontal baseline.

#include <cstdio>

#include "bench_common.h"
#include "eval/report.h"

using namespace lossyts;

int main(int argc, char** argv) {
  Result<std::vector<eval::SweepRecord>> sweep =
      bench::LoadBenchSweep(argc, argv);
  if (!sweep.ok()) {
    std::fprintf(stderr, "sweep: %s\n", sweep.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Figure 2: TE (NRMSE) and CR per error bound ===\n\n");
  for (const std::string& dataset : data::DatasetNames()) {
    double gorilla_cr = 0.0;
    for (const eval::SweepRecord& r : *sweep) {
      if (r.dataset == dataset && r.compressor == "GORILLA") {
        gorilla_cr = r.compression_ratio;
      }
    }
    std::printf("--- %s (GORILLA lossless baseline CR = %.2fx) ---\n",
                dataset.c_str(), gorilla_cr);
    eval::TableWriter table({"eb", "PMC TE", "PMC CR", "SWING TE", "SWING CR",
                             "SZ TE", "SZ CR"});
    for (double eb : compress::PaperErrorBounds()) {
      std::vector<std::string> row = {eval::FormatDouble(eb, 2)};
      for (const std::string& method : compress::LossyCompressorNames()) {
        for (const eval::SweepRecord& r : *sweep) {
          if (r.dataset == dataset && r.compressor == method &&
              r.error_bound == eb) {
            row.push_back(eval::FormatDouble(r.te_nrmse, 4));
            row.push_back(eval::FormatDouble(r.compression_ratio, 1));
          }
        }
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Shape checks vs the paper: every lossy method beats GORILLA's CR "
      "even at eb=0.01 (exception allowed: SWING on Solar); SZ leads CR at "
      "low bounds, PMC overtakes as the bound grows; PMC's TE grows "
      "sub-linearly.\n");
  return 0;
}
