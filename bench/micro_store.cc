// Engineering microbenchmarks (google-benchmark) for the chunk store:
// ingest throughput, point-read latency on model vs lossless chunks, and
// the pushdown-vs-decode aggregate speedup the design is built around. Not
// a paper table — a regression guard for src/store/.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "store/query.h"
#include "store/reader.h"
#include "store/writer.h"

namespace lossyts {
namespace {

TimeSeries MakeSeries(size_t n) {
  Rng rng(42);
  std::vector<double> v(n);
  double x = 100.0;
  for (auto& val : v) {
    x += 0.1 * rng.Normal();
    val = x;
  }
  return TimeSeries(0, 60, std::move(v));
}

std::string BenchStorePath(const char* codec) {
  return std::string("/tmp/lossyts_micro_store_") + codec + ".lts";
}

// Builds (once per codec) a single-codec store over the synthetic walk and
// returns a reader onto it.
std::unique_ptr<store::StoreReader> MakeStore(const char* codec, size_t n) {
  const std::string path = BenchStorePath(codec);
  const TimeSeries series = MakeSeries(n);
  store::StoreOptions options;
  options.error_bound = 0.05;
  options.codecs = {codec};
  auto writer = store::StoreWriter::Create(path, options);
  if (!writer.ok() || !(*writer)->Append(series).ok() ||
      !(*writer)->Finish().ok()) {
    std::fprintf(stderr, "micro_store: cannot build %s\n", path.c_str());
    std::abort();
  }
  auto reader = store::StoreReader::Open(path);
  if (!reader.ok()) std::abort();
  return std::move(*reader);
}

void BM_StoreIngest(benchmark::State& state) {
  const TimeSeries series = MakeSeries(static_cast<size_t>(state.range(0)));
  const std::string path = BenchStorePath("ingest");
  store::StoreOptions options;
  options.error_bound = 0.05;
  for (auto _ : state) {
    auto writer = store::StoreWriter::Create(path, options);
    if (!writer.ok()) std::abort();
    benchmark::DoNotOptimize((*writer)->Append(series));
    benchmark::DoNotOptimize((*writer)->Finish());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  std::remove(path.c_str());
}

template <int kCodec>  // 0 = PMC (segment walk), 1 = GORILLA (prefix decode)
void BM_StorePointRead(benchmark::State& state) {
  const char* codec = kCodec == 0 ? "PMC" : "GORILLA";
  auto reader = MakeStore(codec, static_cast<size_t>(state.range(0)));
  Rng rng(7);
  const int64_t last = reader->last_timestamp();
  for (auto _ : state) {
    // Random on-grid timestamp; ClearChunkCache keeps this a cold partial
    // decode rather than a cache hit.
    const int64_t t = 60 * rng.UniformInt(last / 60 + 1);
    reader->ClearChunkCache();
    benchmark::DoNotOptimize(reader->ReadPoint(t));
  }
}

template <bool kPushdown>
void BM_StoreMean(benchmark::State& state) {
  auto reader = MakeStore("PMC", static_cast<size_t>(state.range(0)));
  store::AggregateOptions options;
  options.allow_pushdown = kPushdown;
  for (auto _ : state) {
    reader->ClearChunkCache();
    benchmark::DoNotOptimize(store::AggregateRange(
        *reader, store::AggregateKind::kMean, reader->start_timestamp(),
        reader->last_timestamp(), options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_StoreRangeScan(benchmark::State& state) {
  auto reader = MakeStore("SZ", 1 << 16);
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    reader->ClearChunkCache();
    benchmark::DoNotOptimize(
        reader->ReadRange(reader->start_timestamp(),
                          reader->last_timestamp(), jobs));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}

BENCHMARK(BM_StoreIngest)->Arg(1 << 14);
BENCHMARK(BM_StorePointRead<0>)->Arg(1 << 16);
BENCHMARK(BM_StorePointRead<1>)->Arg(1 << 16);
// The pushdown-vs-decode pair: the ratio of these two is the speedup the
// acceptance criterion pins (>= 5x on PMC chunks).
BENCHMARK(BM_StoreMean<true>)->Arg(1 << 16);
BENCHMARK(BM_StoreMean<false>)->Arg(1 << 16);
BENCHMARK(BM_StoreRangeScan)->Arg(1)->Arg(4);

}  // namespace
}  // namespace lossyts

BENCHMARK_MAIN();
