// Ablation bench for the design choices documented in DESIGN.md. Not a paper
// table — it quantifies the knobs this reproduction had to pick:
//
//  A. The gzip final pass (§3.2 applies gzip to every compressor output; the
//     paper claims "simple lossy methods like PMC can significantly increase
//     their CR by incorporating lossless compression like gzip").
//  B. PMC's f32-vs-f64 coefficient storage (the ModelarDB width choice).
//  C. SZ's block size (prediction locality vs. per-block overhead).

#include <cstdio>

#include "compress/pipeline.h"
#include "compress/pmc.h"
#include "compress/sz.h"
#include "core/split.h"
#include "data/datasets.h"
#include "eval/report.h"
#include "zip/gzip.h"

using namespace lossyts;

namespace {

Result<size_t> CompressedSize(const compress::Compressor& codec,
                              const TimeSeries& series, double eb,
                              bool gzip_pass) {
  Result<std::vector<uint8_t>> blob = codec.Compress(series, eb);
  if (!blob.ok()) return blob.status();
  if (!gzip_pass) return blob->size();
  return zip::GzipCompress(*blob).size();
}

}  // namespace

int main() {
  data::DatasetOptions options;
  options.length_fraction = 0.125;
  Result<data::Dataset> dataset = data::MakeDataset("ETTm1", options);
  if (!dataset.ok()) return 1;
  const TimeSeries& series = dataset->series;
  const size_t raw_gz = compress::RawGzipSize(series);
  std::printf("=== Ablations on ETTm1 (%zu points, raw .gz %zu bytes) ===\n\n",
              series.size(), raw_gz);

  // A: gzip final pass.
  std::printf("--- A: does the gzip final pass matter? (CR at each eb) ---\n");
  eval::TableWriter gzip_table({"method", "eb", "CR no-gzip", "CR with-gzip"});
  for (const std::string& name : compress::LossyCompressorNames()) {
    Result<std::unique_ptr<compress::Compressor>> codec =
        compress::MakeCompressor(name);
    if (!codec.ok()) return 1;
    for (double eb : {0.05, 0.2, 0.5}) {
      Result<size_t> plain = CompressedSize(**codec, series, eb, false);
      Result<size_t> gz = CompressedSize(**codec, series, eb, true);
      if (!plain.ok() || !gz.ok()) return 1;
      gzip_table.AddRow(
          {name, eval::FormatDouble(eb, 2),
           eval::FormatDouble(static_cast<double>(raw_gz) / *plain, 1),
           eval::FormatDouble(static_cast<double>(raw_gz) / *gz, 1)});
    }
  }
  gzip_table.Print();

  // B: PMC coefficient width.
  std::printf("\n--- B: PMC f32 vs f64 coefficient storage ---\n");
  eval::TableWriter width_table({"eb", "CR f64 coeffs", "CR f32 coeffs"});
  compress::PmcCompressor::Options f64_options;
  f64_options.f32_coefficients = false;
  compress::PmcCompressor pmc_f64(f64_options);
  compress::PmcCompressor pmc_f32;
  for (double eb : {0.01, 0.05, 0.2, 0.5}) {
    Result<compress::PipelineResult> wide =
        compress::RunPipeline(pmc_f64, series, eb);
    Result<compress::PipelineResult> narrow =
        compress::RunPipeline(pmc_f32, series, eb);
    if (!wide.ok() || !narrow.ok()) return 1;
    width_table.AddRow({eval::FormatDouble(eb, 2),
                        eval::FormatDouble(wide->compression_ratio, 1),
                        eval::FormatDouble(narrow->compression_ratio, 1)});
  }
  width_table.Print();

  // C: SZ block size.
  std::printf("\n--- C: SZ block size (eb = 0.05) ---\n");
  eval::TableWriter block_table({"block", "CR", "TE(NRMSE)"});
  for (size_t block : {32u, 64u, 128u, 256u, 512u}) {
    compress::SzCompressor::Options sz_options;
    sz_options.block_size = block;
    compress::SzCompressor sz(sz_options);
    Result<compress::PipelineResult> result =
        compress::RunPipeline(sz, series, 0.05);
    if (!result.ok()) return 1;
    block_table.AddRow({std::to_string(block),
                        eval::FormatDouble(result->compression_ratio, 1),
                        eval::FormatDouble(result->te_nrmse, 4)});
  }
  block_table.Print();
  std::printf(
      "\nReading guide: (A) the gzip pass is worth 1.4-3x CR for every "
      "method, echoing the paper's §4.2 remark about PMC+gzip; (B) f32 "
      "coefficients buy PMC up to ~45%% extra CR at high bounds; (C) larger "
      "SZ blocks make the conservative per-block bound ε·min|v| tighter, "
      "trading CR for TE.\n");
  return 0;
}
