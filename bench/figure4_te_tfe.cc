// Reproduces Figure 4: TFE as a function of TE per dataset and compression
// method — the mean across the seven forecasting models with the 95%
// confidence interval given by the model spread (the paper's vertical bars).

#include <cstdio>

#include "bench_common.h"
#include "eval/report.h"

using namespace lossyts;

int main(int argc, char** argv) {
  Result<std::vector<eval::GridRecord>> grid = bench::LoadBenchGrid(argc, argv);
  if (!grid.ok()) {
    std::fprintf(stderr, "grid: %s\n", grid.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Figure 4: TE vs TFE (mean across models, 95%% CI) ===\n\n");
  for (const std::string& dataset : data::DatasetNames()) {
    std::printf("--- %s ---\n", dataset.c_str());
    eval::TableWriter table(
        {"method", "eb", "TE(NRMSE)", "mean TFE", "95% CI", "n"});
    for (const std::string& method : compress::LossyCompressorNames()) {
      for (double eb : compress::PaperErrorBounds()) {
        std::vector<double> tfes;
        double te = 0.0;
        for (const eval::GridRecord& r : *grid) {
          if (r.dataset == dataset && r.compressor == method &&
              r.error_bound == eb) {
            tfes.push_back(r.tfe);
            te = r.te_nrmse;
          }
        }
        if (tfes.empty()) continue;
        table.AddRow({method, eval::FormatDouble(eb, 2),
                      eval::FormatDouble(te, 4),
                      eval::FormatDouble(eval::MeanOf(tfes), 3),
                      "+/-" + eval::FormatDouble(eval::CiHalfWidth95(tfes), 3),
                      std::to_string(tfes.size())});
      }
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Shape checks vs the paper: minor TEs leave TFE near (or below) zero "
      "— compression can even help; TFE grows super-linearly with TE; "
      "PMC/SWING sit at or below SZ's TFE for comparable TE.\n");
  return 0;
}
