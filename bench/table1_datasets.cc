// Reproduces Table 1: details and statistics of the six datasets.
// Each row shows our synthetic replica's measured statistics next to the
// paper's reported values (in parentheses).

#include <cstdio>

#include "data/datasets.h"
#include "eval/report.h"

using namespace lossyts;

int main() {
  std::printf("=== Table 1: Details and statistics of datasets ===\n");
  std::printf("measured (paper) per column; LEN is the scaled replica size\n\n");

  data::DatasetOptions options;
  options.length_fraction = 0.125;
  eval::TableWriter table({"Dataset", "LEN", "FREQ", "MEAN", "MIN", "MAX",
                           "Q1", "Q3", "rIQD"});
  for (const std::string& name : data::DatasetNames()) {
    Result<data::Dataset> dataset = data::MakeDataset(name, options);
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    Result<TimeSeries::Stats> stats = dataset->series.ComputeStats();
    if (!stats.ok()) return 1;
    const data::PaperStats& p = dataset->paper;
    auto cell = [](double measured, double paper, int precision) {
      return eval::FormatDouble(measured, precision) + " (" +
             eval::FormatDouble(paper, precision) + ")";
    };
    table.AddRow({name,
                  std::to_string(stats->length) + " (" +
                      std::to_string(p.length) + ")",
                  p.freq, cell(stats->mean, p.mean, 2),
                  cell(stats->min, p.min, 0), cell(stats->max, p.max, 0),
                  cell(stats->q1, p.q1, 1), cell(stats->q3, p.q3, 1),
                  cell(stats->riqd_percent, p.riqd_percent, 0) + "%"});
  }
  table.Print();
  std::printf(
      "\nShape check: Weather has by far the smallest rIQD and Solar the "
      "largest, the property driving the paper's CR analysis (RQ1.3).\n");
  return 0;
}
