// Reproduces Table 6: mean (standard deviation) of the relative difference
// in percent between raw and decompressed data for the five most important
// characteristics — max_kl_shift (MKLS), max_level_shift (MLS), seas_acf1
// (SACF1), max_var_shift (MVS) and unitroot_pp (URPP) — over the cells where
// the mean TFE stays at or below 0.1.

#include <cmath>
#include <cstdio>

#include "characteristics_common.h"
#include "eval/report.h"

using namespace lossyts;

namespace {

struct Moments {
  double mean = 0.0;
  double sd = 0.0;
};

Moments ComputeMoments(const std::vector<double>& values) {
  Moments m;
  if (values.empty()) return m;
  for (double v : values) m.mean += v;
  m.mean /= static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - m.mean) * (v - m.mean);
    m.sd = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  Result<std::vector<eval::GridRecord>> grid = bench::LoadBenchGrid(argc, argv);
  if (!grid.ok()) {
    std::fprintf(stderr, "grid: %s\n", grid.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[sensitivity] computing 42 features per cell...\n");
  Result<std::vector<bench::CharacteristicCell>> cells =
      bench::BuildCharacteristicCells(*grid);
  if (!cells.ok()) {
    std::fprintf(stderr, "cells: %s\n", cells.status().ToString().c_str());
    return 1;
  }

  const std::vector<std::string>& names = features::FeatureNames();
  const std::vector<std::pair<std::string, std::string>> tracked = {
      {"MKLS", "max_kl_shift"},   {"MLS", "max_level_shift"},
      {"SACF1", "seas_acf1"},     {"MVS", "max_var_shift"},
      {"URPP", "unitroot_pp"}};
  std::vector<size_t> feature_index;
  for (const auto& [label, feature] : tracked) {
    for (size_t f = 0; f < names.size(); ++f) {
      if (names[f] == feature) feature_index.push_back(f);
    }
  }

  std::printf(
      "=== Table 6: mean (sd) relative difference %% of the five key "
      "characteristics when TFE <= 0.1 ===\n\n");
  std::vector<std::string> header = {"dataset", "method"};
  for (const auto& [label, feature] : tracked) header.push_back(label);
  eval::TableWriter table(std::move(header));

  std::map<std::string, std::vector<std::vector<double>>> avg_pool;
  for (const std::string& dataset : data::DatasetNames()) {
    for (const std::string& method : compress::LossyCompressorNames()) {
      std::vector<std::vector<double>> per_feature(tracked.size());
      for (const bench::CharacteristicCell& cell : *cells) {
        if (cell.dataset != dataset || cell.compressor != method) continue;
        if (cell.mean_tfe > 0.1) continue;  // The paper's TFE filter.
        for (size_t k = 0; k < tracked.size(); ++k) {
          per_feature[k].push_back(
              cell.abs_rel_diff_percent[feature_index[k]]);
        }
      }
      std::vector<std::string> row = {dataset, method};
      auto& pool = avg_pool[method];
      pool.resize(tracked.size());
      for (size_t k = 0; k < tracked.size(); ++k) {
        const Moments m = ComputeMoments(per_feature[k]);
        row.push_back(eval::FormatDouble(m.mean, 1) + " (" +
                      eval::FormatDouble(m.sd, 1) + ")");
        for (double v : per_feature[k]) pool[k].push_back(v);
      }
      table.AddRow(std::move(row));
    }
  }
  for (const std::string& method : compress::LossyCompressorNames()) {
    std::vector<std::string> row = {"AVG", method};
    for (size_t k = 0; k < tracked.size(); ++k) {
      const Moments m = ComputeMoments(avg_pool[method][k]);
      row.push_back(eval::FormatDouble(m.mean, 1) + " (" +
                    eval::FormatDouble(m.sd, 1) + ")");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nShape checks vs the paper: MKLS and URPP move by tens of percent "
      "while MLS, SACF1 and MVS stay within a few percent; PMC inflates "
      "MKLS the most (its constant segments collapse window variance, the "
      "KL-sensitivity effect of §4.3.3).\n");
  return 0;
}
