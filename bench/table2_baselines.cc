// Reproduces Table 2: evaluation-scenario baseline results — R, RSE, RMSE
// and NRMSE of every forecasting model on every dataset's raw test split,
// averaged over seeds. Best NRMSE per dataset is starred.

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "eval/report.h"
#include "forecast/registry.h"

using namespace lossyts;

int main(int argc, char** argv) {
  Result<std::vector<eval::GridRecord>> grid = bench::LoadBenchGrid(argc, argv);
  if (!grid.ok()) {
    std::fprintf(stderr, "grid: %s\n", grid.status().ToString().c_str());
    return 1;
  }

  // Collect baseline rows, averaging across seeds.
  struct Cell {
    std::vector<double> r, rse, rmse, nrmse;
  };
  std::map<std::string, std::map<std::string, Cell>> cells;  // model->ds.
  for (const eval::GridRecord& rec : *grid) {
    if (rec.compressor != "NONE") continue;
    Cell& c = cells[rec.model][rec.dataset];
    c.r.push_back(rec.r());
    c.rse.push_back(rec.rse());
    c.rmse.push_back(rec.rmse());
    c.nrmse.push_back(rec.nrmse());
  }

  // Best NRMSE per dataset.
  std::map<std::string, std::pair<std::string, double>> best;
  for (const auto& [model, by_dataset] : cells) {
    for (const auto& [dataset, cell] : by_dataset) {
      const double nrmse = eval::MeanOf(cell.nrmse);
      auto it = best.find(dataset);
      if (it == best.end() || nrmse < it->second.second) {
        best[dataset] = {model, nrmse};
      }
    }
  }

  std::printf("=== Table 2: Evaluation scenario baseline results ===\n");
  std::printf("(mean over %zu seeds; * marks the best NRMSE per dataset)\n\n",
              bench::DefaultGridOptions().seeds.size());
  std::vector<std::string> header = {"Model", "Metric"};
  for (const std::string& d : data::DatasetNames()) header.push_back(d);
  eval::TableWriter table(std::move(header));
  for (const std::string& model : forecast::ModelNames()) {
    const char* metric_names[] = {"R", "RSE", "RMSE", "NRMSE"};
    for (int m = 0; m < 4; ++m) {
      std::vector<std::string> row = {m == 0 ? model : "", metric_names[m]};
      for (const std::string& dataset : data::DatasetNames()) {
        const Cell& c = cells[model][dataset];
        double value = 0.0;
        switch (m) {
          case 0: value = eval::MeanOf(c.r); break;
          case 1: value = eval::MeanOf(c.rse); break;
          case 2: value = eval::MeanOf(c.rmse); break;
          case 3: value = eval::MeanOf(c.nrmse); break;
        }
        std::string text = eval::FormatDouble(value, 3);
        if (m == 3 && best[dataset].first == model) text += " *";
        row.push_back(std::move(text));
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print();
  return 0;
}
