// The paper's §5 research directions, implemented and measured:
//
//  1. Ensemble of an accurate model with a resilient one ("create an
//     ensemble model using Transformer which has good overall forecasting
//     accuracy and Arima which is more resilient").
//  2. A TFE predictor: learn the mapping from compression characteristics to
//     forecasting impact, so the right (compressor, error bound) can be
//     picked without running any forecasting model.
//  3. The modern lossless baselines beyond the paper: CHIMP vs GORILLA, and
//     the PPA polynomial compressor from the prior study [10].

#include <cstdio>

#include "compress/pipeline.h"
#include "core/split.h"
#include "data/datasets.h"
#include "eval/report.h"
#include "eval/scenario.h"
#include "eval/tfe_predictor.h"
#include "forecast/ensemble.h"
#include "forecast/registry.h"

using namespace lossyts;

int main() {
  data::DatasetOptions data_options;
  data_options.length_fraction = 0.05;
  Result<data::Dataset> dataset = data::MakeDataset("ETTm2", data_options);
  if (!dataset.ok()) return 1;
  Result<TrainValTest> split = SplitSeries(dataset->series);
  if (!split.ok()) return 1;
  forecast::ForecastConfig config;
  config.season_length = dataset->season_length;

  // ---- 1. Ensemble: accuracy + resilience. ----
  std::printf("=== §5.1 Ensemble (NBeats + Arima) on ETTm2 ===\n\n");
  auto make_models = [&]() {
    std::vector<std::unique_ptr<forecast::Forecaster>> members;
    members.push_back(std::move(*forecast::MakeForecaster("NBeats", config)));
    members.push_back(std::move(*forecast::MakeForecaster("Arima", config)));
    return members;
  };
  auto nbeats = std::move(*forecast::MakeForecaster("NBeats", config));
  auto arima = std::move(*forecast::MakeForecaster("Arima", config));
  forecast::EnsembleForecaster ensemble(make_models());
  for (forecast::Forecaster* m :
       {static_cast<forecast::Forecaster*>(nbeats.get()),
        static_cast<forecast::Forecaster*>(arima.get()),
        static_cast<forecast::Forecaster*>(&ensemble)}) {
    if (Status s = m->Fit(split->train, split->val); !s.ok()) return 1;
  }

  Result<std::unique_ptr<compress::Compressor>> pmc =
      compress::MakeCompressor("PMC");
  if (!pmc.ok()) return 1;
  eval::TableWriter ensemble_table(
      {"model", "baseline NRMSE", "TFE@0.2", "TFE@0.4"});
  for (forecast::Forecaster* m :
       {static_cast<forecast::Forecaster*>(nbeats.get()),
        static_cast<forecast::Forecaster*>(arima.get()),
        static_cast<forecast::Forecaster*>(&ensemble)}) {
    Result<std::vector<double>> baseline = eval::EvaluateOnTest(
        *m, split->test, nullptr, config.input_length, config.horizon);
    if (!baseline.ok()) return 1;
    const double baseline_nrmse = (*baseline)[kMetricNrmse];
    std::vector<std::string> row = {std::string(m->name()),
                                    eval::FormatDouble(baseline_nrmse, 4)};
    for (double eb : {0.2, 0.4}) {
      Result<compress::PipelineResult> run =
          compress::RunPipeline(**pmc, split->test, eb);
      if (!run.ok()) return 1;
      Result<std::vector<double>> lossy = eval::EvaluateOnTest(
          *m, split->test, &run->decompressed, config.input_length,
          config.horizon);
      if (!lossy.ok()) return 1;
      row.push_back(eval::FormatDouble(
          eval::Tfe((*lossy)[kMetricNrmse], baseline_nrmse), 3));
    }
    ensemble_table.AddRow(std::move(row));
  }
  ensemble_table.Print();

  // ---- 2. TFE predictor trained on (dataset, compressor, eb) cells. ----
  std::printf("\n=== §5.2 TFE predictor (characteristics -> impact) ===\n\n");
  std::vector<eval::TfePredictor::Example> examples;
  auto gboost = std::move(*forecast::MakeForecaster("GBoost", config));
  if (Status s = gboost->Fit(split->train, split->val); !s.ok()) return 1;
  Result<std::vector<double>> gboost_base = eval::EvaluateOnTest(
      *gboost, split->test, nullptr, config.input_length, config.horizon);
  if (!gboost_base.ok()) return 1;
  const double gboost_base_nrmse = (*gboost_base)[kMetricNrmse];
  for (const std::string& method : compress::LossyCompressorNames()) {
    Result<std::unique_ptr<compress::Compressor>> codec =
        compress::MakeCompressor(method);
    if (!codec.ok()) return 1;
    for (double eb : compress::PaperErrorBounds()) {
      Result<compress::PipelineResult> run =
          compress::RunPipeline(**codec, split->test, eb);
      if (!run.ok()) return 1;
      Result<std::vector<double>> lossy = eval::EvaluateOnTest(
          *gboost, split->test, &run->decompressed, config.input_length,
          config.horizon);
      if (!lossy.ok()) return 1;
      Result<std::vector<double>> features = eval::TfePredictor::BuildFeatures(
          split->test, run->decompressed, dataset->season_length,
          run->te_nrmse, run->compression_ratio);
      if (!features.ok()) return 1;
      examples.push_back(
          {*features,
           eval::Tfe((*lossy)[kMetricNrmse], gboost_base_nrmse)});
    }
  }
  eval::TfePredictor predictor;
  if (Status s = predictor.Fit(examples); !s.ok()) {
    std::fprintf(stderr, "predictor: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "trained on %zu (compressor, eb) cells of ETTm2/GBoost; in-sample "
      "R^2 = %.2f\n",
      examples.size(), predictor.r_squared());
  // Spot predictions: an easy cell and a hard one.
  Result<double> easy = predictor.Predict(examples.front().features);
  Result<double> hard = predictor.Predict(examples[12].features);  // eb 0.8.
  if (easy.ok() && hard.ok()) {
    std::printf("predicted TFE @ PMC eb 0.01: %+.3f (actual %+.3f)\n", *easy,
                examples.front().tfe);
    std::printf("predicted TFE @ PMC eb 0.80: %+.3f (actual %+.3f)\n", *hard,
                examples[12].tfe);
  }

  // ---- 3. Extended codec comparison. ----
  std::printf("\n=== §6 extended codecs: CHIMP, GORILLA and PPA ===\n\n");
  eval::TableWriter codec_table({"codec", "eb", "CR", "TE(NRMSE)"});
  for (const std::string& name : {"GORILLA", "CHIMP"}) {
    Result<std::unique_ptr<compress::Compressor>> codec =
        compress::MakeCompressor(name);
    if (!codec.ok()) return 1;
    Result<compress::PipelineResult> run =
        compress::RunPipeline(**codec, dataset->series, 0.0);
    if (!run.ok()) return 1;
    codec_table.AddRow({name, "-",
                        eval::FormatDouble(run->compression_ratio, 2),
                        "0.0000"});
  }
  Result<std::unique_ptr<compress::Compressor>> ppa =
      compress::MakeCompressor("PPA");
  if (!ppa.ok()) return 1;
  for (double eb : {0.05, 0.2}) {
    Result<compress::PipelineResult> run =
        compress::RunPipeline(**ppa, dataset->series, eb);
    if (!run.ok()) return 1;
    codec_table.AddRow({"PPA", eval::FormatDouble(eb, 2),
                        eval::FormatDouble(run->compression_ratio, 2),
                        eval::FormatDouble(run->te_nrmse, 4)});
  }
  codec_table.Print();
  std::printf(
      "\nReading guide: the ensemble should sit between its members on "
      "baseline NRMSE while inheriting resilience closer to Arima's "
      "(§5); the TFE predictor should track the actual impact without "
      "running a forecaster (§5); CHIMP should beat GORILLA's CR (its "
      "VLDB'22 claim), and PPA's polynomial segments compete with "
      "PMC/SWING at equal bounds (§6.3).\n");
  return 0;
}
