// Reproduces Figure 3: number of segments produced by each lossy method per
// error bound and dataset. For SZ, which has no explicit segments, the count
// is the number of constant runs in the decompressed output (see DESIGN.md).

#include <cstdio>

#include "bench_common.h"
#include "eval/report.h"

using namespace lossyts;

int main(int argc, char** argv) {
  Result<std::vector<eval::SweepRecord>> sweep =
      bench::LoadBenchSweep(argc, argv);
  if (!sweep.ok()) {
    std::fprintf(stderr, "sweep: %s\n", sweep.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Figure 3: segment counts per error bound ===\n\n");
  for (const std::string& dataset : data::DatasetNames()) {
    std::printf("--- %s ---\n", dataset.c_str());
    eval::TableWriter table({"eb", "PMC", "SWING", "SZ"});
    for (double eb : compress::PaperErrorBounds()) {
      std::vector<std::string> row = {eval::FormatDouble(eb, 2)};
      for (const std::string& method : compress::LossyCompressorNames()) {
        for (const eval::SweepRecord& r : *sweep) {
          if (r.dataset == dataset && r.compressor == method &&
              r.error_bound == eb) {
            row.push_back(std::to_string(
                static_cast<long long>(r.segment_count)));
          }
        }
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Shape checks vs the paper: SWING needs the fewest segments (two "
      "coefficients buy flexibility); PMC's segment count falls fastest as "
      "the bound grows, which is what wins it the high-bound CR race.\n");
  return 0;
}
