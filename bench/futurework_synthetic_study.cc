// The paper's §7 future work, implemented: "use synthetic data to further
// validate our findings... adjust the critical time series characteristics
// identified in this paper and test the resilience of specific forecasting
// models to changes in these characteristics."
//
// We generate controlled series sweeping the two characteristics the paper
// ranks highest — seasonal strength (via the signal-to-noise ratio of the
// seasonal component) and distributional shift proneness (via level-shift
// magnitude) — and measure the TFE of a fixed model under PMC compression.

#include <cmath>
#include <cstdio>

#include "compress/pipeline.h"
#include "core/rng.h"
#include "core/split.h"
#include "eval/report.h"
#include "eval/scenario.h"
#include "features/registry.h"
#include "forecast/registry.h"

using namespace lossyts;

namespace {

// Controlled generator: daily sinusoid of amplitude `seasonal_amp`, Gaussian
// noise of sd `noise`, and regime level shifts of size `shift` every 200
// points.
TimeSeries ControlledSeries(double seasonal_amp, double noise, double shift,
                            uint64_t seed) {
  Rng rng(seed);
  const size_t n = 2400;
  std::vector<double> v(n);
  double level = 50.0;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && i % 200 == 0) {
      level += (rng.Uniform() < 0.5 ? -1.0 : 1.0) * shift;
    }
    v[i] = level +
           seasonal_amp *
               std::sin(2.0 * 3.14159265 * static_cast<double>(i) / 24.0) +
           noise * rng.Normal();
  }
  return TimeSeries(0, 3600, std::move(v));
}

}  // namespace

int main() {
  forecast::ForecastConfig config;
  config.input_length = 48;
  config.horizon = 12;
  config.season_length = 24;
  config.max_epochs = 6;
  config.max_train_windows = 128;

  std::printf(
      "=== Future work (§7): accuracy degradation vs controlled "
      "characteristics (GBoost under PMC @ eb 0.3) ===\n\n");
  eval::TableWriter table({"seasonal amp", "level shift", "seas_strength",
                           "max_kl_shift", "baseline NRMSE", "lossy NRMSE",
                           "dNRMSE", "TFE"});

  const double noise = 1.0;
  for (double seasonal_amp : {6.0, 2.0, 0.5}) {
    {
      for (double shift : {0.0, 8.0}) {
        TimeSeries series = ControlledSeries(seasonal_amp, noise, shift, 7);
        Result<TrainValTest> split = SplitSeries(series);
        if (!split.ok()) return 1;

        Result<std::unique_ptr<forecast::Forecaster>> model =
            forecast::MakeForecaster("GBoost", config);
        if (!model.ok()) return 1;
        if (Status s = (*model)->Fit(split->train, split->val); !s.ok()) {
          return 1;
        }
        Result<std::vector<double>> baseline = eval::EvaluateOnTest(
            **model, split->test, nullptr, config.input_length,
            config.horizon);
        if (!baseline.ok()) return 1;
        const double baseline_nrmse = (*baseline)[kMetricNrmse];

        Result<std::unique_ptr<compress::Compressor>> pmc =
            compress::MakeCompressor("PMC");
        if (!pmc.ok()) return 1;
        Result<compress::PipelineResult> run =
            compress::RunPipeline(**pmc, split->test, 0.3);
        if (!run.ok()) return 1;
        Result<std::vector<double>> lossy = eval::EvaluateOnTest(
            **model, split->test, &run->decompressed, config.input_length,
            config.horizon);
        if (!lossy.ok()) return 1;
        const double lossy_nrmse = (*lossy)[kMetricNrmse];

        Result<features::FeatureMap> characteristics =
            features::ComputeAllFeatures(split->test, 24);
        if (!characteristics.ok()) return 1;

        table.AddRow(
            {eval::FormatDouble(seasonal_amp, 1),
             eval::FormatDouble(shift, 1),
             eval::FormatDouble(characteristics->at("seas_strength"), 2),
             eval::FormatDouble(characteristics->at("max_kl_shift"), 1),
             eval::FormatDouble(baseline_nrmse, 4),
             eval::FormatDouble(lossy_nrmse, 4),
             eval::FormatDouble(lossy_nrmse - baseline_nrmse, 4),
             eval::FormatDouble(eval::Tfe(lossy_nrmse, baseline_nrmse), 3)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nReading guide (the §4.4 mechanism, demonstrated causally): the "
      "characteristic columns respond directly to the generator knobs "
      "(seas_strength tracks the signal-to-noise ratio; max_kl_shift tracks "
      "the level shifts). The degradation concentrates exactly where the "
      "model's learned structure lies: at eb 0.3 the relative bound swallows "
      "the whole seasonal wave (amplitude 6 over mean 50), so the "
      "strongly-seasonal series — whose forecasts depended on that wave — "
      "lose the most accuracy, while weakly-structured series have little "
      "to lose. This is the paper's finding that accurate models' \"subtle "
      "patterns are among the first to be distorted\". Level shifts inflate "
      "max_kl_shift and degrade the *baseline* itself, which masks further "
      "compression damage (the TFE denominator effect behind the paper's "
      "GRU exclusion in §4.3).\n");
  return 0;
}
