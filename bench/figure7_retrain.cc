// Reproduces Figure 7 and the §4.4.1 analysis: what happens when Arima and
// DLinear are retrained on decompressed (rather than raw) ETTm1/ETTm2 data.
// For each compressor and error bound the model is trained AND evaluated on
// decompressed data, with TFE measured against the raw-trained baseline.
// The bench closes with the trend/remainder RMSE decomposition analysis that
// explains DLinear's sensitivity.

#include <cstdio>

#include "bench_common.h"
#include "core/metrics.h"
#include "core/split.h"
#include "eval/report.h"
#include "eval/scenario.h"
#include "features/decompose.h"
#include "forecast/registry.h"

using namespace lossyts;

int main() {
  const std::vector<std::string> models = {"Arima", "DLinear"};
  const std::vector<std::string> datasets = {"ETTm1", "ETTm2"};
  const std::vector<double> error_bounds = {0.05, 0.1, 0.2, 0.3};

  eval::GridOptions grid_options = bench::DefaultGridOptions();
  std::printf(
      "=== Figure 7: TFE of Arima and DLinear when TRAINED on decompressed "
      "data ===\n\n");

  for (const std::string& dataset_name : datasets) {
    Result<data::Dataset> dataset =
        data::MakeDataset(dataset_name, grid_options.data);
    if (!dataset.ok()) return 1;
    Result<TrainValTest> split = SplitSeries(dataset->series);
    if (!split.ok()) return 1;

    forecast::ForecastConfig config = grid_options.forecast;
    config.season_length = dataset->season_length;

    std::printf("--- %s ---\n", dataset_name.c_str());
    eval::TableWriter table({"model", "method", "eb", "NRMSE", "TFE"});
    for (const std::string& model_name : models) {
      // Raw-trained baseline for the TFE denominator.
      Result<std::unique_ptr<forecast::Forecaster>> baseline_model =
          forecast::MakeForecaster(model_name, config);
      if (!baseline_model.ok()) return 1;
      if (Status s = (*baseline_model)->Fit(split->train, split->val);
          !s.ok()) {
        return 1;
      }
      Result<std::vector<double>> baseline = eval::EvaluateOnTest(
          **baseline_model, split->test, nullptr, config.input_length,
          config.horizon);
      if (!baseline.ok()) return 1;
      const double baseline_nrmse = (*baseline)[kMetricNrmse];

      for (const std::string& method : compress::LossyCompressorNames()) {
        for (double eb : error_bounds) {
          std::fprintf(stderr, "[retrain] %s/%s/%s eb=%.2f\n",
                       dataset_name.c_str(), model_name.c_str(),
                       method.c_str(), eb);
          Result<std::vector<double>> retrained =
              eval::EvaluateRetrainOnDecompressed(
                  model_name, config, split->train, split->val, split->test,
                  method, eb);
          if (!retrained.ok()) {
            std::fprintf(stderr, "retrain failed: %s\n",
                         retrained.status().ToString().c_str());
            return 1;
          }
          const double retrained_nrmse = (*retrained)[kMetricNrmse];
          table.AddRow({model_name, method, eval::FormatDouble(eb, 2),
                        eval::FormatDouble(retrained_nrmse, 4),
                        eval::FormatDouble(
                            eval::Tfe(retrained_nrmse, baseline_nrmse), 3)});
        }
      }
    }
    table.Print();
    std::printf("\n");
  }

  // §4.4.1: impact of compression on the trend and remainder components.
  std::printf(
      "=== §4.4.1 analysis: RMSE between raw and decompressed trend / "
      "remainder components ===\n\n");
  eval::TableWriter decomposition_table(
      {"dataset", "eb", "trend RMSE", "remainder RMSE"});
  const std::vector<std::pair<std::string, double>> analysis_points = {
      {"ETTm1", 0.2}, {"ETTm2", 0.1}};
  for (const auto& [dataset_name, eb] : analysis_points) {
    Result<data::Dataset> dataset =
        data::MakeDataset(dataset_name, grid_options.data);
    if (!dataset.ok()) return 1;
    Result<TrainValTest> split = SplitSeries(dataset->series);
    if (!split.ok()) return 1;

    std::vector<double> trend_rmse;
    std::vector<double> remainder_rmse;
    for (const std::string& method : compress::LossyCompressorNames()) {
      Result<std::unique_ptr<compress::Compressor>> compressor =
          compress::MakeCompressor(method);
      if (!compressor.ok()) return 1;
      Result<std::vector<uint8_t>> blob =
          (*compressor)->Compress(split->test, eb);
      if (!blob.ok()) return 1;
      Result<TimeSeries> decompressed = (*compressor)->Decompress(*blob);
      if (!decompressed.ok()) return 1;

      Result<features::Decomposition> raw_decomp = features::Decompose(
          split->test.values(), dataset->season_length);
      Result<features::Decomposition> lossy_decomp = features::Decompose(
          decompressed->values(), dataset->season_length);
      if (!raw_decomp.ok() || !lossy_decomp.ok()) return 1;
      Result<double> t_rmse = Rmse(raw_decomp->trend, lossy_decomp->trend);
      Result<double> r_rmse =
          Rmse(raw_decomp->remainder, lossy_decomp->remainder);
      if (!t_rmse.ok() || !r_rmse.ok()) return 1;
      trend_rmse.push_back(*t_rmse);
      remainder_rmse.push_back(*r_rmse);
    }
    decomposition_table.AddRow(
        {dataset_name, eval::FormatDouble(eb, 1),
         eval::FormatDouble(eval::MeanOf(trend_rmse), 3),
         eval::FormatDouble(eval::MeanOf(remainder_rmse), 3)});
  }
  decomposition_table.Print();
  std::printf(
      "\nShape checks vs the paper: Arima's retrained TFE stays moderate "
      "(it can adapt to compressed data) while DLinear deteriorates on "
      "ETTm2; the remainder component is distorted more than the trend, "
      "i.e. compression attacks short-term fluctuations first.\n");
  return 0;
}
