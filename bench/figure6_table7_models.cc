// Reproduces Figure 6 and Table 7: per-model resilience to lossy
// compression. Figure 6 shows the mean TFE of each forecasting model per
// dataset (averaged over compressors and error bounds up to the dataset's
// median elbow EB, as the paper selects); Table 7 lists the best model per
// dataset by baseline NRMSE and by TFE.

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "eval/report.h"
#include "forecast/registry.h"

using namespace lossyts;

int main(int argc, char** argv) {
  Result<std::vector<eval::GridRecord>> grid = bench::LoadBenchGrid(argc, argv);
  if (!grid.ok()) {
    std::fprintf(stderr, "grid: %s\n", grid.status().ToString().c_str());
    return 1;
  }

  // EB cap: the paper averages TFE up to each dataset's mean elbow EB from
  // Table 5. Our scaled replica's elbows sit around 0.2-0.5, so a fixed cap
  // at the top of that range keeps this binary self-contained while showing
  // the per-model differentiation.
  const double eb_cap = 0.5;

  std::printf(
      "=== Figure 6: mean TFE per forecasting model (error bounds <= %.2f) "
      "===\n\n",
      eb_cap);
  std::vector<std::string> header = {"Model"};
  for (const std::string& d : data::DatasetNames()) header.push_back(d);
  eval::TableWriter figure({std::move(header)});

  std::map<std::string, std::map<std::string, double>> mean_tfe;
  for (const std::string& model : forecast::ModelNames()) {
    std::vector<std::string> row = {model};
    for (const std::string& dataset : data::DatasetNames()) {
      std::vector<double> tfes;
      for (const eval::GridRecord& r : *grid) {
        if (r.model == model && r.dataset == dataset &&
            r.compressor != "NONE" && r.error_bound <= eb_cap + 1e-12) {
          tfes.push_back(r.tfe);
        }
      }
      const double mean = eval::MeanOf(tfes);
      mean_tfe[model][dataset] = mean;
      row.push_back(eval::FormatDouble(mean, 3));
    }
    figure.AddRow(std::move(row));
  }
  figure.Print();

  // Table 7: best model per dataset by baseline NRMSE and by TFE.
  std::map<std::string, std::map<std::string, std::vector<double>>> baseline;
  for (const eval::GridRecord& r : *grid) {
    if (r.compressor == "NONE") {
      baseline[r.dataset][r.model].push_back(r.nrmse());
    }
  }
  std::printf("\n=== Table 7: best models based on NRMSE and TFE ===\n\n");
  std::vector<std::string> t7_header = {"criterion"};
  for (const std::string& d : data::DatasetNames()) t7_header.push_back(d);
  eval::TableWriter table7(std::move(t7_header));
  std::vector<std::string> nrmse_row = {"NRMSE"};
  std::vector<std::string> tfe_row = {"TFE"};
  for (const std::string& dataset : data::DatasetNames()) {
    std::string best_nrmse_model;
    double best_nrmse = 1e18;
    for (const auto& [model, values] : baseline[dataset]) {
      const double m = eval::MeanOf(values);
      if (m < best_nrmse) {
        best_nrmse = m;
        best_nrmse_model = model;
      }
    }
    std::string best_tfe_model;
    double best_tfe = 1e18;
    for (const std::string& model : forecast::ModelNames()) {
      const double t = mean_tfe[model][dataset];
      if (t < best_tfe) {
        best_tfe = t;
        best_tfe_model = model;
      }
    }
    nrmse_row.push_back(best_nrmse_model);
    tfe_row.push_back(best_tfe_model);
  }
  table7.AddRow(std::move(nrmse_row));
  table7.AddRow(std::move(tfe_row));
  table7.Print();
  std::printf(
      "\nShape checks vs the paper (RQ3): the two Table 7 rows should "
      "disagree — the paper's central pattern is the *inverse relationship* "
      "between baseline accuracy and resilience: whichever models win the "
      "NRMSE row (at paper scale the complex ones; at this replica's tiny "
      "widths often GBoost/Arima/NBeats) suffer the larger TFEs, while the "
      "weaker-baseline models barely move under compression.\n");
  return 0;
}
