// Reproduces Figure 1: what PMC, SWING and SZ output looks like against the
// original series on ETTm1/ETTm2 segments at error bounds 0.05 and 0.1.
// The figure is rendered as text: a subsampled value track per method plus
// the structural statistics that the paper reads off the plot (SZ's
// quantization-induced constant runs, PMC's steps, SWING's slopes).

#include <cstdio>

#include "compress/pipeline.h"
#include "data/datasets.h"
#include "eval/report.h"

using namespace lossyts;

namespace {

void ShowSegment(const std::string& dataset_name, double error_bound) {
  data::DatasetOptions options;
  options.length_fraction = 0.125;
  Result<data::Dataset> dataset = data::MakeDataset(dataset_name, options);
  if (!dataset.ok()) return;
  // A 300-point afternoon slice, as in the paper's plot.
  Result<TimeSeries> slice = dataset->series.Slice(1000, 1300);
  if (!slice.ok()) return;

  std::printf("--- %s @ error bound %.2f (300-point slice) ---\n",
              dataset_name.c_str(), error_bound);
  eval::TableWriter table(
      {"t", "OR", "PMC", "SWING", "SZ"});

  std::vector<TimeSeries> outputs;
  std::vector<size_t> runs;
  for (const std::string& name : compress::LossyCompressorNames()) {
    Result<std::unique_ptr<compress::Compressor>> compressor =
        compress::MakeCompressor(name);
    if (!compressor.ok()) return;
    Result<compress::PipelineResult> result =
        compress::RunPipeline(**compressor, *slice, error_bound);
    if (!result.ok()) return;
    runs.push_back(compress::CountConstantRuns(result->decompressed));
    outputs.push_back(std::move(result->decompressed));
  }

  for (size_t i = 0; i < slice->size(); i += 15) {
    table.AddRow({std::to_string(i), eval::FormatDouble((*slice)[i], 2),
                  eval::FormatDouble(outputs[0][i], 2),
                  eval::FormatDouble(outputs[1][i], 2),
                  eval::FormatDouble(outputs[2][i], 2)});
  }
  table.Print();
  std::printf(
      "constant runs in 300 points: PMC %zu, SWING %zu, SZ %zu "
      "(SZ's quantization makes it look piecewise-constant like PMC)\n\n",
      runs[0], runs[1], runs[2]);
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 1: compression output vs original (OR) series ===\n\n");
  for (const std::string& dataset : {"ETTm1", "ETTm2"}) {
    for (double eb : {0.05, 0.1}) {
      ShowSegment(dataset, eb);
    }
  }
  return 0;
}
