#ifndef LOSSYTS_BENCH_CHARACTERISTICS_COMMON_H_
#define LOSSYTS_BENCH_CHARACTERISTICS_COMMON_H_

// Shared machinery for the characteristic-analysis benches (Figure 5 /
// Table 4 / Table 6): per (dataset, compressor, error bound) cell, compute
// the 42 characteristics on the raw and the decompressed test split, their
// differences, and the cell's mean TFE from the forecasting grid.

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "compress/pipeline.h"
#include "core/split.h"
#include "features/registry.h"

namespace lossyts::bench {

struct CharacteristicCell {
  std::string dataset;
  std::string compressor;
  double error_bound = 0.0;
  double mean_tfe = 0.0;
  /// Signed relative difference (lossy − raw) / max(|raw|, tiny) per
  /// feature, aligned with FeatureNames() order.
  std::vector<double> signed_rel_diff;
  /// Absolute relative difference in percent (Table 6's measurement).
  std::vector<double> abs_rel_diff_percent;
};

/// Builds all cells. Uses the same data scaling as the forecasting grid so
/// the TFE targets line up with the measured characteristic changes.
inline Result<std::vector<CharacteristicCell>> BuildCharacteristicCells(
    const std::vector<eval::GridRecord>& grid) {
  const eval::GridOptions grid_options = DefaultGridOptions();
  const std::vector<std::string>& names = features::FeatureNames();

  // Mean TFE per cell from the grid.
  std::map<std::string, std::pair<double, int>> tfe_acc;
  auto cell_key = [](const std::string& d, const std::string& c, double eb) {
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer), "%s|%s|%.4f", d.c_str(), c.c_str(),
                  eb);
    return std::string(buffer);
  };
  for (const eval::GridRecord& r : grid) {
    if (r.compressor == "NONE") continue;
    auto& acc = tfe_acc[cell_key(r.dataset, r.compressor, r.error_bound)];
    acc.first += r.tfe;
    acc.second += 1;
  }

  std::vector<CharacteristicCell> cells;
  for (const std::string& dataset_name : data::DatasetNames()) {
    Result<data::Dataset> dataset =
        data::MakeDataset(dataset_name, grid_options.data);
    if (!dataset.ok()) return dataset.status();
    Result<TrainValTest> split = SplitSeries(dataset->series);
    if (!split.ok()) return split.status();
    // Wind's nominal 900-sample "season" exceeds what the grid-scale test
    // split can estimate; fall back to the non-seasonal feature set there.
    size_t season = dataset->season_length;
    if (split->test.size() < 3 * season) season = 0;
    Result<features::FeatureMap> raw_features =
        features::ComputeAllFeatures(split->test, season);
    if (!raw_features.ok()) return raw_features.status();

    for (const std::string& compressor_name :
         compress::LossyCompressorNames()) {
      Result<std::unique_ptr<compress::Compressor>> compressor =
          compress::MakeCompressor(compressor_name);
      if (!compressor.ok()) return compressor.status();
      for (double eb : compress::PaperErrorBounds()) {
        Result<compress::PipelineResult> pipeline =
            compress::RunPipeline(**compressor, split->test, eb);
        if (!pipeline.ok()) return pipeline.status();
        Result<features::FeatureMap> lossy_features =
            features::ComputeAllFeatures(pipeline->decompressed, season);
        if (!lossy_features.ok()) return lossy_features.status();

        CharacteristicCell cell;
        cell.dataset = dataset_name;
        cell.compressor = compressor_name;
        cell.error_bound = eb;
        const auto it =
            tfe_acc.find(cell_key(dataset_name, compressor_name, eb));
        if (it != tfe_acc.end() && it->second.second > 0) {
          cell.mean_tfe = it->second.first / it->second.second;
        }
        cell.signed_rel_diff.reserve(names.size());
        cell.abs_rel_diff_percent.reserve(names.size());
        for (const std::string& name : names) {
          const double raw = raw_features->at(name);
          const double lossy = lossy_features->at(name);
          const double denom = std::max(std::abs(raw), 1e-9);
          cell.signed_rel_diff.push_back((lossy - raw) / denom);
          cell.abs_rel_diff_percent.push_back(100.0 * std::abs(lossy - raw) /
                                              denom);
        }
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

}  // namespace lossyts::bench

#endif  // LOSSYTS_BENCH_CHARACTERISTICS_COMMON_H_
