// Reproduces Table 5: per compression method and dataset, the Kneedle elbow
// of the TFE-vs-TE curve and the error bound, TE, CR and TFE at that elbow —
// the median across the seven forecasting models, plus the cross-dataset
// average (the paper's headline 13.65x/5.56x/14.97x CR and
// 5.5%/3.3%/8.5% TFE numbers).

#include <cstdio>
#include <map>

#include "analysis/kneedle.h"
#include "bench_common.h"
#include "eval/report.h"
#include "forecast/registry.h"

using namespace lossyts;

namespace {

struct ElbowPoint {
  double eb = 0.0;
  double te = 0.0;
  double cr = 0.0;
  double tfe = 0.0;
  bool valid = false;
};

// Elbow of one model's TFE(TE) curve for a (dataset, method) pair.
ElbowPoint FindModelElbow(const std::vector<eval::GridRecord>& grid,
                          const std::string& dataset,
                          const std::string& method,
                          const std::string& model) {
  // Average over seeds per error bound.
  std::map<double, std::vector<const eval::GridRecord*>> by_eb;
  for (const eval::GridRecord& r : grid) {
    if (r.dataset == dataset && r.compressor == method && r.model == model) {
      by_eb[r.error_bound].push_back(&r);
    }
  }
  std::vector<double> eb;
  std::vector<double> te;
  std::vector<double> cr;
  std::vector<double> tfe;
  for (const auto& [bound, records] : by_eb) {
    double te_sum = 0.0;
    double cr_sum = 0.0;
    double tfe_sum = 0.0;
    for (const eval::GridRecord* r : records) {
      te_sum += r->te_nrmse;
      cr_sum += r->compression_ratio;
      tfe_sum += r->tfe;
    }
    const double n = static_cast<double>(records.size());
    eb.push_back(bound);
    te.push_back(te_sum / n);
    cr.push_back(cr_sum / n);
    tfe.push_back(tfe_sum / n);
  }
  ElbowPoint elbow;
  if (eb.size() < 3) return elbow;

  // Low-rIQD datasets saturate: past some bound the decompressed series stops
  // changing and TE/TFE go flat, which breaks the convex-increasing Kneedle
  // premise. Truncate the curve at the end of the strictly-rising TE prefix.
  size_t cut = 1;
  while (cut < te.size() && te[cut] > te[cut - 1] * (1.0 + 1e-9)) ++cut;

  auto pick = [&](size_t index) {
    elbow.eb = eb[index];
    elbow.te = te[index];
    elbow.cr = cr[index];
    elbow.tfe = tfe[index];
    elbow.valid = true;
  };

  if (cut >= 5) {
    std::vector<double> x(eb.begin(), eb.begin() + cut);
    std::vector<double> y(tfe.begin(), tfe.begin() + cut);
    analysis::KneedleOptions options;
    options.curve = analysis::KneedleCurve::kConvexIncreasing;
    Result<analysis::KneePoint> knee = analysis::FindKnee(x, y, options);
    if (knee.ok()) {
      pick(knee->index);
      return elbow;
    }
    options.curve = analysis::KneedleCurve::kConcaveIncreasing;
    knee = analysis::FindKnee(x, y, options);
    if (knee.ok()) {
      pick(knee->index);
      return elbow;
    }
  }
  // Fallback for short or irregular curves: the point of maximal discrete
  // second difference of TFE, i.e. where growth accelerates the most.
  size_t best = 1;
  double best_curvature = -1e18;
  for (size_t i = 1; i + 1 < cut; ++i) {
    const double curvature = (tfe[i + 1] - tfe[i]) - (tfe[i] - tfe[i - 1]);
    if (curvature > best_curvature) {
      best_curvature = curvature;
      best = i;
    }
  }
  pick(best);
  return elbow;
}

}  // namespace

int main(int argc, char** argv) {
  Result<std::vector<eval::GridRecord>> grid = bench::LoadBenchGrid(argc, argv);
  if (!grid.ok()) {
    std::fprintf(stderr, "grid: %s\n", grid.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "=== Table 5: elbows' median error bound (EB), TE, CR and TFE ===\n\n");
  std::vector<std::string> header = {"Method", ""};
  for (const std::string& d : data::DatasetNames()) header.push_back(d);
  header.push_back("AVG");
  eval::TableWriter table(std::move(header));

  for (const std::string& method : compress::LossyCompressorNames()) {
    std::map<std::string, std::vector<double>> rows;  // metric -> datasets.
    std::vector<std::string> eb_row = {method, "EB"};
    std::vector<std::string> te_row = {"", "TE"};
    std::vector<std::string> cr_row = {"", "CR"};
    std::vector<std::string> tfe_row = {"", "TFE"};
    std::vector<double> avg_eb, avg_te, avg_cr, avg_tfe;
    for (const std::string& dataset : data::DatasetNames()) {
      std::vector<double> ebs, tes, crs, tfes;
      for (const std::string& model : forecast::ModelNames()) {
        const ElbowPoint elbow =
            FindModelElbow(*grid, dataset, method, model);
        if (elbow.valid) {
          ebs.push_back(elbow.eb);
          tes.push_back(elbow.te);
          crs.push_back(elbow.cr);
          tfes.push_back(elbow.tfe);
        }
      }
      const double med_eb = eval::MedianOf(ebs);
      const double med_te = eval::MedianOf(tes);
      const double med_cr = eval::MedianOf(crs);
      const double med_tfe = eval::MedianOf(tfes);
      eb_row.push_back(eval::FormatDouble(med_eb, 2));
      te_row.push_back(eval::FormatDouble(med_te, 3));
      cr_row.push_back(eval::FormatDouble(med_cr, 1));
      tfe_row.push_back(eval::FormatDouble(med_tfe, 3));
      avg_eb.push_back(med_eb);
      avg_te.push_back(med_te);
      avg_cr.push_back(med_cr);
      avg_tfe.push_back(med_tfe);
    }
    eb_row.push_back(eval::FormatDouble(eval::MeanOf(avg_eb), 2));
    te_row.push_back(eval::FormatDouble(eval::MeanOf(avg_te), 3));
    cr_row.push_back(eval::FormatDouble(eval::MeanOf(avg_cr), 1));
    tfe_row.push_back(eval::FormatDouble(eval::MeanOf(avg_tfe), 3));
    table.AddRow(std::move(eb_row));
    table.AddRow(std::move(te_row));
    table.AddRow(std::move(cr_row));
    table.AddRow(std::move(tfe_row));
  }
  table.Print();
  std::printf(
      "\nShape checks vs the paper (AVG column, paper values: CR "
      "13.65/5.56/14.97 and TFE 0.055/0.033/0.085 for PMC/SWING/SZ): the "
      "average elbow CRs land in the paper's 5-25x band with tolerable "
      "elbow TFEs (well under the 0.1 'significant' mark for PMC); PMC is "
      "the balanced pick — high CR at near-zero accuracy cost; SZ's elbow "
      "TFE is the worst of the three. Known deviation: our SWING's elbows "
      "land at higher bounds than the paper's, lifting its CR above the "
      "paper's clear-loser position (see EXPERIMENTS.md).\n");
  return 0;
}
