// Reproduces Table 3: linear regression coefficients [theta1, theta0] and
// standard errors for CR = theta1 * TE + theta0, per dataset and method.

#include <cstdio>

#include "analysis/linreg.h"
#include "bench_common.h"
#include "eval/report.h"

using namespace lossyts;

int main(int argc, char** argv) {
  Result<std::vector<eval::SweepRecord>> sweep =
      bench::LoadBenchSweep(argc, argv);
  if (!sweep.ok()) {
    std::fprintf(stderr, "sweep: %s\n", sweep.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "=== Table 3: OLS coefficients [theta1, theta0] and SE, "
      "CR as a function of TE ===\n\n");
  eval::TableWriter table({"Dataset", "", "PMC th1", "PMC th0", "SWING th1",
                           "SWING th0", "SZ th1", "SZ th0"});
  for (const std::string& dataset : data::DatasetNames()) {
    std::vector<std::string> coef_row = {dataset, "Coef"};
    std::vector<std::string> se_row = {"", "SE"};
    for (const std::string& method : compress::LossyCompressorNames()) {
      std::vector<double> te;
      std::vector<double> cr;
      for (const eval::SweepRecord& r : *sweep) {
        if (r.dataset == dataset && r.compressor == method) {
          te.push_back(r.te_nrmse);
          cr.push_back(r.compression_ratio);
        }
      }
      Result<analysis::OlsResult> fit = analysis::FitSimpleRegression(te, cr);
      if (!fit.ok()) {
        coef_row.insert(coef_row.end(), {"-", "-"});
        se_row.insert(se_row.end(), {"-", "-"});
        continue;
      }
      coef_row.push_back(eval::FormatDouble(fit->coefficients[1], 1));
      coef_row.push_back(eval::FormatDouble(fit->coefficients[0], 1));
      se_row.push_back(eval::FormatDouble(fit->standard_errors[1], 1));
      se_row.push_back(eval::FormatDouble(fit->standard_errors[0], 1));
    }
    table.AddRow(std::move(coef_row));
    table.AddRow(std::move(se_row));
  }
  table.Print();
  std::printf(
      "\nShape checks vs the paper: theta1 > 0 everywhere (TE and CR are "
      "positively related); low-rIQD datasets (Weather, ElecDem) show much "
      "larger and noisier coefficients, i.e. the unreliable cluster of "
      "§4.2.1; SZ has the largest theta0 (best CR at negligible TE).\n");
  return 0;
}
