# Empty dependencies file for figure3_segments.
# This may be replaced when dependencies are built.
