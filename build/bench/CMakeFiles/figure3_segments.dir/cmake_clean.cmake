file(REMOVE_RECURSE
  "CMakeFiles/figure3_segments.dir/figure3_segments.cc.o"
  "CMakeFiles/figure3_segments.dir/figure3_segments.cc.o.d"
  "figure3_segments"
  "figure3_segments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
