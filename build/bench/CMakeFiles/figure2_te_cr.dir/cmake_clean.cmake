file(REMOVE_RECURSE
  "CMakeFiles/figure2_te_cr.dir/figure2_te_cr.cc.o"
  "CMakeFiles/figure2_te_cr.dir/figure2_te_cr.cc.o.d"
  "figure2_te_cr"
  "figure2_te_cr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_te_cr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
