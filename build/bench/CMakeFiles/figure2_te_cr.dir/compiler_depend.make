# Empty compiler generated dependencies file for figure2_te_cr.
# This may be replaced when dependencies are built.
