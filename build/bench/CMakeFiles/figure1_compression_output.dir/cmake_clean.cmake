file(REMOVE_RECURSE
  "CMakeFiles/figure1_compression_output.dir/figure1_compression_output.cc.o"
  "CMakeFiles/figure1_compression_output.dir/figure1_compression_output.cc.o.d"
  "figure1_compression_output"
  "figure1_compression_output.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_compression_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
