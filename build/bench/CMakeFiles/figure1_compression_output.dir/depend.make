# Empty dependencies file for figure1_compression_output.
# This may be replaced when dependencies are built.
