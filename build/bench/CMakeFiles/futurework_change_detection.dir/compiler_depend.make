# Empty compiler generated dependencies file for futurework_change_detection.
# This may be replaced when dependencies are built.
