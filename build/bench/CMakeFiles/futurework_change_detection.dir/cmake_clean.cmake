file(REMOVE_RECURSE
  "CMakeFiles/futurework_change_detection.dir/futurework_change_detection.cc.o"
  "CMakeFiles/futurework_change_detection.dir/futurework_change_detection.cc.o.d"
  "futurework_change_detection"
  "futurework_change_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futurework_change_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
