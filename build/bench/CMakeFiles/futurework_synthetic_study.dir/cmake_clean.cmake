file(REMOVE_RECURSE
  "CMakeFiles/futurework_synthetic_study.dir/futurework_synthetic_study.cc.o"
  "CMakeFiles/futurework_synthetic_study.dir/futurework_synthetic_study.cc.o.d"
  "futurework_synthetic_study"
  "futurework_synthetic_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futurework_synthetic_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
