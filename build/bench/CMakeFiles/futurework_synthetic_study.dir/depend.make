# Empty dependencies file for futurework_synthetic_study.
# This may be replaced when dependencies are built.
