file(REMOVE_RECURSE
  "CMakeFiles/figure5_table4_characteristics.dir/figure5_table4_characteristics.cc.o"
  "CMakeFiles/figure5_table4_characteristics.dir/figure5_table4_characteristics.cc.o.d"
  "figure5_table4_characteristics"
  "figure5_table4_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure5_table4_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
