# Empty compiler generated dependencies file for figure5_table4_characteristics.
# This may be replaced when dependencies are built.
