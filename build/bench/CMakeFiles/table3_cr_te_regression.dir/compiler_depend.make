# Empty compiler generated dependencies file for table3_cr_te_regression.
# This may be replaced when dependencies are built.
