file(REMOVE_RECURSE
  "CMakeFiles/table3_cr_te_regression.dir/table3_cr_te_regression.cc.o"
  "CMakeFiles/table3_cr_te_regression.dir/table3_cr_te_regression.cc.o.d"
  "table3_cr_te_regression"
  "table3_cr_te_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cr_te_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
