file(REMOVE_RECURSE
  "CMakeFiles/figure4_te_tfe.dir/figure4_te_tfe.cc.o"
  "CMakeFiles/figure4_te_tfe.dir/figure4_te_tfe.cc.o.d"
  "figure4_te_tfe"
  "figure4_te_tfe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_te_tfe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
