# Empty compiler generated dependencies file for figure4_te_tfe.
# This may be replaced when dependencies are built.
