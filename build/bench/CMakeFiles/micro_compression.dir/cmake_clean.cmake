file(REMOVE_RECURSE
  "CMakeFiles/micro_compression.dir/micro_compression.cc.o"
  "CMakeFiles/micro_compression.dir/micro_compression.cc.o.d"
  "micro_compression"
  "micro_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
