# Empty compiler generated dependencies file for figure6_table7_models.
# This may be replaced when dependencies are built.
