file(REMOVE_RECURSE
  "CMakeFiles/figure6_table7_models.dir/figure6_table7_models.cc.o"
  "CMakeFiles/figure6_table7_models.dir/figure6_table7_models.cc.o.d"
  "figure6_table7_models"
  "figure6_table7_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure6_table7_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
