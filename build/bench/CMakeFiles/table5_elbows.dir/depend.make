# Empty dependencies file for table5_elbows.
# This may be replaced when dependencies are built.
