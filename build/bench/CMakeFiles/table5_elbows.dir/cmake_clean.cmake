file(REMOVE_RECURSE
  "CMakeFiles/table5_elbows.dir/table5_elbows.cc.o"
  "CMakeFiles/table5_elbows.dir/table5_elbows.cc.o.d"
  "table5_elbows"
  "table5_elbows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_elbows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
