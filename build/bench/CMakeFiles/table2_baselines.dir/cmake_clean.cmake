file(REMOVE_RECURSE
  "CMakeFiles/table2_baselines.dir/table2_baselines.cc.o"
  "CMakeFiles/table2_baselines.dir/table2_baselines.cc.o.d"
  "table2_baselines"
  "table2_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
