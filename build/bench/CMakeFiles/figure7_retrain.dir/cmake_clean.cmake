file(REMOVE_RECURSE
  "CMakeFiles/figure7_retrain.dir/figure7_retrain.cc.o"
  "CMakeFiles/figure7_retrain.dir/figure7_retrain.cc.o.d"
  "figure7_retrain"
  "figure7_retrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7_retrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
