# Empty compiler generated dependencies file for figure7_retrain.
# This may be replaced when dependencies are built.
