# Empty dependencies file for futurework_extensions.
# This may be replaced when dependencies are built.
