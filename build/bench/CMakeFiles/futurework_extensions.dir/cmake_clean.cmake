file(REMOVE_RECURSE
  "CMakeFiles/futurework_extensions.dir/futurework_extensions.cc.o"
  "CMakeFiles/futurework_extensions.dir/futurework_extensions.cc.o.d"
  "futurework_extensions"
  "futurework_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futurework_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
