file(REMOVE_RECURSE
  "CMakeFiles/compress_test.dir/compress/chimp_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/chimp_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/gorilla_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/gorilla_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/pipeline_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/pipeline_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/pmc_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/pmc_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/ppa_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/ppa_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/robustness_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/robustness_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/swing_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/swing_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/sz_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/sz_test.cc.o.d"
  "compress_test"
  "compress_test.pdb"
  "compress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
