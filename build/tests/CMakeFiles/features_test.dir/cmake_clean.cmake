file(REMOVE_RECURSE
  "CMakeFiles/features_test.dir/features/acf_test.cc.o"
  "CMakeFiles/features_test.dir/features/acf_test.cc.o.d"
  "CMakeFiles/features_test.dir/features/decompose_test.cc.o"
  "CMakeFiles/features_test.dir/features/decompose_test.cc.o.d"
  "CMakeFiles/features_test.dir/features/misc_test.cc.o"
  "CMakeFiles/features_test.dir/features/misc_test.cc.o.d"
  "CMakeFiles/features_test.dir/features/registry_test.cc.o"
  "CMakeFiles/features_test.dir/features/registry_test.cc.o.d"
  "CMakeFiles/features_test.dir/features/rolling_test.cc.o"
  "CMakeFiles/features_test.dir/features/rolling_test.cc.o.d"
  "CMakeFiles/features_test.dir/features/unitroot_test.cc.o"
  "CMakeFiles/features_test.dir/features/unitroot_test.cc.o.d"
  "features_test"
  "features_test.pdb"
  "features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
