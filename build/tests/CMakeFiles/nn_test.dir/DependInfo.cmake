
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/attention_grad_test.cc" "tests/CMakeFiles/nn_test.dir/nn/attention_grad_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/attention_grad_test.cc.o.d"
  "/root/repo/tests/nn/autodiff_test.cc" "tests/CMakeFiles/nn_test.dir/nn/autodiff_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/autodiff_test.cc.o.d"
  "/root/repo/tests/nn/module_test.cc" "tests/CMakeFiles/nn_test.dir/nn/module_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/module_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/lossyts_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/lossyts_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/zip/CMakeFiles/lossyts_zip.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/lossyts_data.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/lossyts_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/lossyts_features.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lossyts_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lossyts_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lossyts_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
