# Empty compiler generated dependencies file for zip_test.
# This may be replaced when dependencies are built.
