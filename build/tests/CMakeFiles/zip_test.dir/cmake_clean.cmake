file(REMOVE_RECURSE
  "CMakeFiles/zip_test.dir/zip/bitstream_test.cc.o"
  "CMakeFiles/zip_test.dir/zip/bitstream_test.cc.o.d"
  "CMakeFiles/zip_test.dir/zip/crc32_test.cc.o"
  "CMakeFiles/zip_test.dir/zip/crc32_test.cc.o.d"
  "CMakeFiles/zip_test.dir/zip/deflate_multiblock_test.cc.o"
  "CMakeFiles/zip_test.dir/zip/deflate_multiblock_test.cc.o.d"
  "CMakeFiles/zip_test.dir/zip/deflate_test.cc.o"
  "CMakeFiles/zip_test.dir/zip/deflate_test.cc.o.d"
  "CMakeFiles/zip_test.dir/zip/gzip_interop_test.cc.o"
  "CMakeFiles/zip_test.dir/zip/gzip_interop_test.cc.o.d"
  "CMakeFiles/zip_test.dir/zip/gzip_test.cc.o"
  "CMakeFiles/zip_test.dir/zip/gzip_test.cc.o.d"
  "CMakeFiles/zip_test.dir/zip/huffman_test.cc.o"
  "CMakeFiles/zip_test.dir/zip/huffman_test.cc.o.d"
  "CMakeFiles/zip_test.dir/zip/lz77_test.cc.o"
  "CMakeFiles/zip_test.dir/zip/lz77_test.cc.o.d"
  "zip_test"
  "zip_test.pdb"
  "zip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
