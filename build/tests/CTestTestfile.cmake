# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/zip_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/forecast_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
