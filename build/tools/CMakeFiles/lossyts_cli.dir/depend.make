# Empty dependencies file for lossyts_cli.
# This may be replaced when dependencies are built.
