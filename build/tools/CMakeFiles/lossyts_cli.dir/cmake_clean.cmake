file(REMOVE_RECURSE
  "CMakeFiles/lossyts_cli.dir/lossyts_cli.cc.o"
  "CMakeFiles/lossyts_cli.dir/lossyts_cli.cc.o.d"
  "lossyts"
  "lossyts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossyts_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
