# Empty dependencies file for model_resilience.
# This may be replaced when dependencies are built.
