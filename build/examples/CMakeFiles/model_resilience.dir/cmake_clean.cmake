file(REMOVE_RECURSE
  "CMakeFiles/model_resilience.dir/model_resilience.cpp.o"
  "CMakeFiles/model_resilience.dir/model_resilience.cpp.o.d"
  "model_resilience"
  "model_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
