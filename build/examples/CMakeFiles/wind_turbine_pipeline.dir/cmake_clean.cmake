file(REMOVE_RECURSE
  "CMakeFiles/wind_turbine_pipeline.dir/wind_turbine_pipeline.cpp.o"
  "CMakeFiles/wind_turbine_pipeline.dir/wind_turbine_pipeline.cpp.o.d"
  "wind_turbine_pipeline"
  "wind_turbine_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wind_turbine_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
