# Empty compiler generated dependencies file for lossyts_nn.
# This may be replaced when dependencies are built.
