file(REMOVE_RECURSE
  "liblossyts_nn.a"
)
