file(REMOVE_RECURSE
  "CMakeFiles/lossyts_nn.dir/attention.cc.o"
  "CMakeFiles/lossyts_nn.dir/attention.cc.o.d"
  "CMakeFiles/lossyts_nn.dir/autodiff.cc.o"
  "CMakeFiles/lossyts_nn.dir/autodiff.cc.o.d"
  "CMakeFiles/lossyts_nn.dir/module.cc.o"
  "CMakeFiles/lossyts_nn.dir/module.cc.o.d"
  "CMakeFiles/lossyts_nn.dir/optimizer.cc.o"
  "CMakeFiles/lossyts_nn.dir/optimizer.cc.o.d"
  "liblossyts_nn.a"
  "liblossyts_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossyts_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
