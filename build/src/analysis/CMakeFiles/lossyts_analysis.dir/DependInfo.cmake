
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/change_detection.cc" "src/analysis/CMakeFiles/lossyts_analysis.dir/change_detection.cc.o" "gcc" "src/analysis/CMakeFiles/lossyts_analysis.dir/change_detection.cc.o.d"
  "/root/repo/src/analysis/correlation.cc" "src/analysis/CMakeFiles/lossyts_analysis.dir/correlation.cc.o" "gcc" "src/analysis/CMakeFiles/lossyts_analysis.dir/correlation.cc.o.d"
  "/root/repo/src/analysis/gbm.cc" "src/analysis/CMakeFiles/lossyts_analysis.dir/gbm.cc.o" "gcc" "src/analysis/CMakeFiles/lossyts_analysis.dir/gbm.cc.o.d"
  "/root/repo/src/analysis/kneedle.cc" "src/analysis/CMakeFiles/lossyts_analysis.dir/kneedle.cc.o" "gcc" "src/analysis/CMakeFiles/lossyts_analysis.dir/kneedle.cc.o.d"
  "/root/repo/src/analysis/linreg.cc" "src/analysis/CMakeFiles/lossyts_analysis.dir/linreg.cc.o" "gcc" "src/analysis/CMakeFiles/lossyts_analysis.dir/linreg.cc.o.d"
  "/root/repo/src/analysis/tree.cc" "src/analysis/CMakeFiles/lossyts_analysis.dir/tree.cc.o" "gcc" "src/analysis/CMakeFiles/lossyts_analysis.dir/tree.cc.o.d"
  "/root/repo/src/analysis/treeshap.cc" "src/analysis/CMakeFiles/lossyts_analysis.dir/treeshap.cc.o" "gcc" "src/analysis/CMakeFiles/lossyts_analysis.dir/treeshap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lossyts_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
