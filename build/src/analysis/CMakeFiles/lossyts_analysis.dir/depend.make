# Empty dependencies file for lossyts_analysis.
# This may be replaced when dependencies are built.
