file(REMOVE_RECURSE
  "CMakeFiles/lossyts_analysis.dir/change_detection.cc.o"
  "CMakeFiles/lossyts_analysis.dir/change_detection.cc.o.d"
  "CMakeFiles/lossyts_analysis.dir/correlation.cc.o"
  "CMakeFiles/lossyts_analysis.dir/correlation.cc.o.d"
  "CMakeFiles/lossyts_analysis.dir/gbm.cc.o"
  "CMakeFiles/lossyts_analysis.dir/gbm.cc.o.d"
  "CMakeFiles/lossyts_analysis.dir/kneedle.cc.o"
  "CMakeFiles/lossyts_analysis.dir/kneedle.cc.o.d"
  "CMakeFiles/lossyts_analysis.dir/linreg.cc.o"
  "CMakeFiles/lossyts_analysis.dir/linreg.cc.o.d"
  "CMakeFiles/lossyts_analysis.dir/tree.cc.o"
  "CMakeFiles/lossyts_analysis.dir/tree.cc.o.d"
  "CMakeFiles/lossyts_analysis.dir/treeshap.cc.o"
  "CMakeFiles/lossyts_analysis.dir/treeshap.cc.o.d"
  "liblossyts_analysis.a"
  "liblossyts_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossyts_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
