file(REMOVE_RECURSE
  "liblossyts_analysis.a"
)
