# Empty dependencies file for lossyts_data.
# This may be replaced when dependencies are built.
