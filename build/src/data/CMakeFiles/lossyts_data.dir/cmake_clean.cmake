file(REMOVE_RECURSE
  "CMakeFiles/lossyts_data.dir/csv.cc.o"
  "CMakeFiles/lossyts_data.dir/csv.cc.o.d"
  "CMakeFiles/lossyts_data.dir/datasets.cc.o"
  "CMakeFiles/lossyts_data.dir/datasets.cc.o.d"
  "CMakeFiles/lossyts_data.dir/generator.cc.o"
  "CMakeFiles/lossyts_data.dir/generator.cc.o.d"
  "liblossyts_data.a"
  "liblossyts_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossyts_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
