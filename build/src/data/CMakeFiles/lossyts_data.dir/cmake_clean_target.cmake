file(REMOVE_RECURSE
  "liblossyts_data.a"
)
