
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zip/bitstream.cc" "src/zip/CMakeFiles/lossyts_zip.dir/bitstream.cc.o" "gcc" "src/zip/CMakeFiles/lossyts_zip.dir/bitstream.cc.o.d"
  "/root/repo/src/zip/crc32.cc" "src/zip/CMakeFiles/lossyts_zip.dir/crc32.cc.o" "gcc" "src/zip/CMakeFiles/lossyts_zip.dir/crc32.cc.o.d"
  "/root/repo/src/zip/deflate.cc" "src/zip/CMakeFiles/lossyts_zip.dir/deflate.cc.o" "gcc" "src/zip/CMakeFiles/lossyts_zip.dir/deflate.cc.o.d"
  "/root/repo/src/zip/gzip.cc" "src/zip/CMakeFiles/lossyts_zip.dir/gzip.cc.o" "gcc" "src/zip/CMakeFiles/lossyts_zip.dir/gzip.cc.o.d"
  "/root/repo/src/zip/huffman.cc" "src/zip/CMakeFiles/lossyts_zip.dir/huffman.cc.o" "gcc" "src/zip/CMakeFiles/lossyts_zip.dir/huffman.cc.o.d"
  "/root/repo/src/zip/lz77.cc" "src/zip/CMakeFiles/lossyts_zip.dir/lz77.cc.o" "gcc" "src/zip/CMakeFiles/lossyts_zip.dir/lz77.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lossyts_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
