file(REMOVE_RECURSE
  "CMakeFiles/lossyts_zip.dir/bitstream.cc.o"
  "CMakeFiles/lossyts_zip.dir/bitstream.cc.o.d"
  "CMakeFiles/lossyts_zip.dir/crc32.cc.o"
  "CMakeFiles/lossyts_zip.dir/crc32.cc.o.d"
  "CMakeFiles/lossyts_zip.dir/deflate.cc.o"
  "CMakeFiles/lossyts_zip.dir/deflate.cc.o.d"
  "CMakeFiles/lossyts_zip.dir/gzip.cc.o"
  "CMakeFiles/lossyts_zip.dir/gzip.cc.o.d"
  "CMakeFiles/lossyts_zip.dir/huffman.cc.o"
  "CMakeFiles/lossyts_zip.dir/huffman.cc.o.d"
  "CMakeFiles/lossyts_zip.dir/lz77.cc.o"
  "CMakeFiles/lossyts_zip.dir/lz77.cc.o.d"
  "liblossyts_zip.a"
  "liblossyts_zip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossyts_zip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
