file(REMOVE_RECURSE
  "liblossyts_zip.a"
)
