# Empty dependencies file for lossyts_zip.
# This may be replaced when dependencies are built.
