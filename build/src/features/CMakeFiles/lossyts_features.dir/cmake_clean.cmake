file(REMOVE_RECURSE
  "CMakeFiles/lossyts_features.dir/acf.cc.o"
  "CMakeFiles/lossyts_features.dir/acf.cc.o.d"
  "CMakeFiles/lossyts_features.dir/decompose.cc.o"
  "CMakeFiles/lossyts_features.dir/decompose.cc.o.d"
  "CMakeFiles/lossyts_features.dir/misc.cc.o"
  "CMakeFiles/lossyts_features.dir/misc.cc.o.d"
  "CMakeFiles/lossyts_features.dir/registry.cc.o"
  "CMakeFiles/lossyts_features.dir/registry.cc.o.d"
  "CMakeFiles/lossyts_features.dir/rolling.cc.o"
  "CMakeFiles/lossyts_features.dir/rolling.cc.o.d"
  "CMakeFiles/lossyts_features.dir/spectral.cc.o"
  "CMakeFiles/lossyts_features.dir/spectral.cc.o.d"
  "CMakeFiles/lossyts_features.dir/unitroot.cc.o"
  "CMakeFiles/lossyts_features.dir/unitroot.cc.o.d"
  "liblossyts_features.a"
  "liblossyts_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossyts_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
