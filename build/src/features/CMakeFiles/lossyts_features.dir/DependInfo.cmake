
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/acf.cc" "src/features/CMakeFiles/lossyts_features.dir/acf.cc.o" "gcc" "src/features/CMakeFiles/lossyts_features.dir/acf.cc.o.d"
  "/root/repo/src/features/decompose.cc" "src/features/CMakeFiles/lossyts_features.dir/decompose.cc.o" "gcc" "src/features/CMakeFiles/lossyts_features.dir/decompose.cc.o.d"
  "/root/repo/src/features/misc.cc" "src/features/CMakeFiles/lossyts_features.dir/misc.cc.o" "gcc" "src/features/CMakeFiles/lossyts_features.dir/misc.cc.o.d"
  "/root/repo/src/features/registry.cc" "src/features/CMakeFiles/lossyts_features.dir/registry.cc.o" "gcc" "src/features/CMakeFiles/lossyts_features.dir/registry.cc.o.d"
  "/root/repo/src/features/rolling.cc" "src/features/CMakeFiles/lossyts_features.dir/rolling.cc.o" "gcc" "src/features/CMakeFiles/lossyts_features.dir/rolling.cc.o.d"
  "/root/repo/src/features/spectral.cc" "src/features/CMakeFiles/lossyts_features.dir/spectral.cc.o" "gcc" "src/features/CMakeFiles/lossyts_features.dir/spectral.cc.o.d"
  "/root/repo/src/features/unitroot.cc" "src/features/CMakeFiles/lossyts_features.dir/unitroot.cc.o" "gcc" "src/features/CMakeFiles/lossyts_features.dir/unitroot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lossyts_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
