# Empty dependencies file for lossyts_features.
# This may be replaced when dependencies are built.
