file(REMOVE_RECURSE
  "liblossyts_features.a"
)
