# Empty compiler generated dependencies file for lossyts_compress.
# This may be replaced when dependencies are built.
