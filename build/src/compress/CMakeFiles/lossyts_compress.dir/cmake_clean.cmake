file(REMOVE_RECURSE
  "CMakeFiles/lossyts_compress.dir/chimp.cc.o"
  "CMakeFiles/lossyts_compress.dir/chimp.cc.o.d"
  "CMakeFiles/lossyts_compress.dir/gorilla.cc.o"
  "CMakeFiles/lossyts_compress.dir/gorilla.cc.o.d"
  "CMakeFiles/lossyts_compress.dir/pipeline.cc.o"
  "CMakeFiles/lossyts_compress.dir/pipeline.cc.o.d"
  "CMakeFiles/lossyts_compress.dir/pmc.cc.o"
  "CMakeFiles/lossyts_compress.dir/pmc.cc.o.d"
  "CMakeFiles/lossyts_compress.dir/ppa.cc.o"
  "CMakeFiles/lossyts_compress.dir/ppa.cc.o.d"
  "CMakeFiles/lossyts_compress.dir/swing.cc.o"
  "CMakeFiles/lossyts_compress.dir/swing.cc.o.d"
  "CMakeFiles/lossyts_compress.dir/sz.cc.o"
  "CMakeFiles/lossyts_compress.dir/sz.cc.o.d"
  "liblossyts_compress.a"
  "liblossyts_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossyts_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
