file(REMOVE_RECURSE
  "liblossyts_compress.a"
)
