
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/chimp.cc" "src/compress/CMakeFiles/lossyts_compress.dir/chimp.cc.o" "gcc" "src/compress/CMakeFiles/lossyts_compress.dir/chimp.cc.o.d"
  "/root/repo/src/compress/gorilla.cc" "src/compress/CMakeFiles/lossyts_compress.dir/gorilla.cc.o" "gcc" "src/compress/CMakeFiles/lossyts_compress.dir/gorilla.cc.o.d"
  "/root/repo/src/compress/pipeline.cc" "src/compress/CMakeFiles/lossyts_compress.dir/pipeline.cc.o" "gcc" "src/compress/CMakeFiles/lossyts_compress.dir/pipeline.cc.o.d"
  "/root/repo/src/compress/pmc.cc" "src/compress/CMakeFiles/lossyts_compress.dir/pmc.cc.o" "gcc" "src/compress/CMakeFiles/lossyts_compress.dir/pmc.cc.o.d"
  "/root/repo/src/compress/ppa.cc" "src/compress/CMakeFiles/lossyts_compress.dir/ppa.cc.o" "gcc" "src/compress/CMakeFiles/lossyts_compress.dir/ppa.cc.o.d"
  "/root/repo/src/compress/swing.cc" "src/compress/CMakeFiles/lossyts_compress.dir/swing.cc.o" "gcc" "src/compress/CMakeFiles/lossyts_compress.dir/swing.cc.o.d"
  "/root/repo/src/compress/sz.cc" "src/compress/CMakeFiles/lossyts_compress.dir/sz.cc.o" "gcc" "src/compress/CMakeFiles/lossyts_compress.dir/sz.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lossyts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/zip/CMakeFiles/lossyts_zip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
