file(REMOVE_RECURSE
  "CMakeFiles/lossyts_core.dir/metrics.cc.o"
  "CMakeFiles/lossyts_core.dir/metrics.cc.o.d"
  "CMakeFiles/lossyts_core.dir/split.cc.o"
  "CMakeFiles/lossyts_core.dir/split.cc.o.d"
  "CMakeFiles/lossyts_core.dir/status.cc.o"
  "CMakeFiles/lossyts_core.dir/status.cc.o.d"
  "CMakeFiles/lossyts_core.dir/time_series.cc.o"
  "CMakeFiles/lossyts_core.dir/time_series.cc.o.d"
  "liblossyts_core.a"
  "liblossyts_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossyts_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
