# Empty dependencies file for lossyts_core.
# This may be replaced when dependencies are built.
