file(REMOVE_RECURSE
  "liblossyts_core.a"
)
