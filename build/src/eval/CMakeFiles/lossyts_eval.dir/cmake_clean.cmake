file(REMOVE_RECURSE
  "CMakeFiles/lossyts_eval.dir/compression_sweep.cc.o"
  "CMakeFiles/lossyts_eval.dir/compression_sweep.cc.o.d"
  "CMakeFiles/lossyts_eval.dir/grid.cc.o"
  "CMakeFiles/lossyts_eval.dir/grid.cc.o.d"
  "CMakeFiles/lossyts_eval.dir/report.cc.o"
  "CMakeFiles/lossyts_eval.dir/report.cc.o.d"
  "CMakeFiles/lossyts_eval.dir/scenario.cc.o"
  "CMakeFiles/lossyts_eval.dir/scenario.cc.o.d"
  "CMakeFiles/lossyts_eval.dir/tfe_predictor.cc.o"
  "CMakeFiles/lossyts_eval.dir/tfe_predictor.cc.o.d"
  "liblossyts_eval.a"
  "liblossyts_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossyts_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
