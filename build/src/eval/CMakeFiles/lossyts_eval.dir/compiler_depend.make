# Empty compiler generated dependencies file for lossyts_eval.
# This may be replaced when dependencies are built.
