file(REMOVE_RECURSE
  "liblossyts_eval.a"
)
