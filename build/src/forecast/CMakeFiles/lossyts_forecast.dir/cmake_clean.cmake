file(REMOVE_RECURSE
  "CMakeFiles/lossyts_forecast.dir/arima.cc.o"
  "CMakeFiles/lossyts_forecast.dir/arima.cc.o.d"
  "CMakeFiles/lossyts_forecast.dir/dlinear.cc.o"
  "CMakeFiles/lossyts_forecast.dir/dlinear.cc.o.d"
  "CMakeFiles/lossyts_forecast.dir/ensemble.cc.o"
  "CMakeFiles/lossyts_forecast.dir/ensemble.cc.o.d"
  "CMakeFiles/lossyts_forecast.dir/gboost.cc.o"
  "CMakeFiles/lossyts_forecast.dir/gboost.cc.o.d"
  "CMakeFiles/lossyts_forecast.dir/gru.cc.o"
  "CMakeFiles/lossyts_forecast.dir/gru.cc.o.d"
  "CMakeFiles/lossyts_forecast.dir/nbeats.cc.o"
  "CMakeFiles/lossyts_forecast.dir/nbeats.cc.o.d"
  "CMakeFiles/lossyts_forecast.dir/nn_forecaster.cc.o"
  "CMakeFiles/lossyts_forecast.dir/nn_forecaster.cc.o.d"
  "CMakeFiles/lossyts_forecast.dir/registry.cc.o"
  "CMakeFiles/lossyts_forecast.dir/registry.cc.o.d"
  "CMakeFiles/lossyts_forecast.dir/scaler.cc.o"
  "CMakeFiles/lossyts_forecast.dir/scaler.cc.o.d"
  "CMakeFiles/lossyts_forecast.dir/transformer.cc.o"
  "CMakeFiles/lossyts_forecast.dir/transformer.cc.o.d"
  "CMakeFiles/lossyts_forecast.dir/window.cc.o"
  "CMakeFiles/lossyts_forecast.dir/window.cc.o.d"
  "liblossyts_forecast.a"
  "liblossyts_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossyts_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
