
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forecast/arima.cc" "src/forecast/CMakeFiles/lossyts_forecast.dir/arima.cc.o" "gcc" "src/forecast/CMakeFiles/lossyts_forecast.dir/arima.cc.o.d"
  "/root/repo/src/forecast/dlinear.cc" "src/forecast/CMakeFiles/lossyts_forecast.dir/dlinear.cc.o" "gcc" "src/forecast/CMakeFiles/lossyts_forecast.dir/dlinear.cc.o.d"
  "/root/repo/src/forecast/ensemble.cc" "src/forecast/CMakeFiles/lossyts_forecast.dir/ensemble.cc.o" "gcc" "src/forecast/CMakeFiles/lossyts_forecast.dir/ensemble.cc.o.d"
  "/root/repo/src/forecast/gboost.cc" "src/forecast/CMakeFiles/lossyts_forecast.dir/gboost.cc.o" "gcc" "src/forecast/CMakeFiles/lossyts_forecast.dir/gboost.cc.o.d"
  "/root/repo/src/forecast/gru.cc" "src/forecast/CMakeFiles/lossyts_forecast.dir/gru.cc.o" "gcc" "src/forecast/CMakeFiles/lossyts_forecast.dir/gru.cc.o.d"
  "/root/repo/src/forecast/nbeats.cc" "src/forecast/CMakeFiles/lossyts_forecast.dir/nbeats.cc.o" "gcc" "src/forecast/CMakeFiles/lossyts_forecast.dir/nbeats.cc.o.d"
  "/root/repo/src/forecast/nn_forecaster.cc" "src/forecast/CMakeFiles/lossyts_forecast.dir/nn_forecaster.cc.o" "gcc" "src/forecast/CMakeFiles/lossyts_forecast.dir/nn_forecaster.cc.o.d"
  "/root/repo/src/forecast/registry.cc" "src/forecast/CMakeFiles/lossyts_forecast.dir/registry.cc.o" "gcc" "src/forecast/CMakeFiles/lossyts_forecast.dir/registry.cc.o.d"
  "/root/repo/src/forecast/scaler.cc" "src/forecast/CMakeFiles/lossyts_forecast.dir/scaler.cc.o" "gcc" "src/forecast/CMakeFiles/lossyts_forecast.dir/scaler.cc.o.d"
  "/root/repo/src/forecast/transformer.cc" "src/forecast/CMakeFiles/lossyts_forecast.dir/transformer.cc.o" "gcc" "src/forecast/CMakeFiles/lossyts_forecast.dir/transformer.cc.o.d"
  "/root/repo/src/forecast/window.cc" "src/forecast/CMakeFiles/lossyts_forecast.dir/window.cc.o" "gcc" "src/forecast/CMakeFiles/lossyts_forecast.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lossyts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lossyts_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lossyts_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/lossyts_features.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
