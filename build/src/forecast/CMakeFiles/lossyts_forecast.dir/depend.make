# Empty dependencies file for lossyts_forecast.
# This may be replaced when dependencies are built.
