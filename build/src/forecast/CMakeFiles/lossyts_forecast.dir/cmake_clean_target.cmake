file(REMOVE_RECURSE
  "liblossyts_forecast.a"
)
